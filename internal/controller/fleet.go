package controller

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// PeerKey identifies one monitored peer inside a fleet: the (AS, BGP
// identifier) pair from the BMP per-peer header, which is unique per
// monitored router.
type PeerKey struct {
	AS    uint32
	BGPID uint32
}

// String renders the key as "AS65010/0a000001".
func (k PeerKey) String() string { return fmt.Sprintf("AS%d/%08x", k.AS, k.BGPID) }

// Op is one observation to deliver to a peer's engine.
type Op struct {
	At       time.Duration
	Withdraw bool
	Prefix   netaddr.Prefix
	Path     []uint32 // announcement path; nil for withdrawals
}

// Batch is a group of observations delivered to a peer engine in one
// hand-off. An empty batch advances the engine clock to At (a tick).
type Batch struct {
	At  time.Duration
	Ops []Op

	done chan<- struct{} // closed after the batch is applied (Sync)
}

// FleetConfig parameterizes a Fleet.
type FleetConfig struct {
	// Engine builds the engine configuration for a new peer. Nil
	// selects a default whose PrimaryNeighbor is the peer's AS.
	Engine func(key PeerKey) swiftengine.Config
	// OnPeer, when set, runs per newly created peer before it becomes
	// visible to other callers — the place to preload alternate routes
	// or other per-peer state. It runs off the fleet's locks; under a
	// creation race it may run for a candidate that is then discarded,
	// so it must only touch the peer it is given.
	OnPeer func(p *FleetPeer)
	// QueueDepth is the per-peer batch channel depth (default 64).
	// A full queue blocks Enqueue — backpressure, never loss.
	QueueDepth int
	// Logf, when set, receives one line per fleet event.
	Logf func(format string, args ...any)
}

func (c FleetConfig) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

// fleetStripes is the lock-stripe count of the peer map. Peer lookup is
// on the per-message hot path; striping keeps concurrent router
// connections from serializing on one mutex.
const fleetStripes = 16

type fleetStripe struct {
	mu    sync.RWMutex
	peers map[PeerKey]*FleetPeer
}

// Fleet is a pool of per-peer SWIFT engines — the multi-session
// deployment of §4.1 ("a router runs one engine per session, in
// parallel") behind a single ingestion front end. Peers are created on
// first use; each owns its engine and a goroutine that applies
// delivered batches, so N peers reroute independently and in parallel.
type Fleet struct {
	cfg     FleetConfig
	stripes [fleetStripes]fleetStripe
	wg      sync.WaitGroup
	closed  atomic.Bool

	batches atomic.Uint64
	ops     atomic.Uint64
}

// NewFleet builds an empty fleet.
func NewFleet(cfg FleetConfig) *Fleet {
	f := &Fleet{cfg: cfg}
	for i := range f.stripes {
		f.stripes[i].peers = make(map[PeerKey]*FleetPeer)
	}
	return f
}

func (f *Fleet) stripe(key PeerKey) *fleetStripe {
	h := key.AS*0x9e3779b9 ^ key.BGPID*0x85ebca6b
	return &f.stripes[h%fleetStripes]
}

// Lookup returns the peer for key if it exists.
func (f *Fleet) Lookup(key PeerKey) (*FleetPeer, bool) {
	s := f.stripe(key)
	s.mu.RLock()
	p, ok := s.peers[key]
	s.mu.RUnlock()
	return p, ok
}

// Peer returns the engine peer for key, creating it (and its delivery
// goroutine) on first use. Creation — including the OnPeer hook, which
// may be expensive (e.g. loading an alternates RIB) — runs off the
// stripe lock so it never stalls other peers' hot-path lookups; two
// racing creators both initialize a candidate and the insert
// double-checks, so OnPeer may run for a discarded candidate (it must
// only touch the peer it is given).
func (f *Fleet) Peer(key PeerKey) *FleetPeer {
	s := f.stripe(key)
	s.mu.RLock()
	p, ok := s.peers[key]
	s.mu.RUnlock()
	if ok {
		return p
	}
	cfg := swiftengine.Config{PrimaryNeighbor: key.AS}
	if f.cfg.Engine != nil {
		cfg = f.cfg.Engine(key)
	}
	cand := &FleetPeer{
		key:    key,
		fleet:  f,
		engine: swiftengine.New(cfg),
		ch:     make(chan Batch, f.cfg.queueDepth()),
	}
	if f.cfg.OnPeer != nil {
		f.cfg.OnPeer(cand)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok = s.peers[key]; ok {
		return p // lost the creation race; cand is discarded
	}
	if f.closed.Load() {
		// The fleet closed while we were creating: register the peer
		// dead (Enqueue reports false, no goroutine) so a racing Close
		// never misses a running goroutine in its sweep. The closed
		// store happens before Close takes this stripe's lock, so
		// either we see it here or Close's sweep sees the map entry.
		cand.chClosed = true
		s.peers[key] = cand
		return cand
	}
	s.peers[key] = cand
	f.wg.Add(1)
	go cand.run()
	f.logf("fleet: peer %s created", key)
	return cand
}

// Peers snapshots the pool, sorted by key for stable iteration.
func (f *Fleet) Peers() []*FleetPeer {
	var out []*FleetPeer
	for i := range f.stripes {
		s := &f.stripes[i]
		s.mu.RLock()
		for _, p := range s.peers {
			out = append(out, p)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].key, out[j].key
		if a.AS != b.AS {
			return a.AS < b.AS
		}
		return a.BGPID < b.BGPID
	})
	return out
}

// Len returns the number of peers in the pool.
func (f *Fleet) Len() int {
	n := 0
	for i := range f.stripes {
		s := &f.stripes[i]
		s.mu.RLock()
		n += len(s.peers)
		s.mu.RUnlock()
	}
	return n
}

// PeerDecision is one engine decision attributed to its peer.
type PeerDecision struct {
	Peer PeerKey
	swiftengine.Decision
}

// Decisions aggregates every peer engine's decision log, ordered by
// peer then decision time.
func (f *Fleet) Decisions() []PeerDecision {
	var out []PeerDecision
	for _, p := range f.Peers() {
		for _, d := range p.Decisions() {
			out = append(out, PeerDecision{Peer: p.key, Decision: d})
		}
	}
	return out
}

// FleetMetrics is an aggregate snapshot across the pool.
type FleetMetrics struct {
	Peers          int
	Batches        uint64
	Ops            uint64
	Withdrawals    uint64
	Announcements  uint64
	Decisions      int
	RulesInstalled int
	Rerouting      int // peers with fast-reroute rules installed now
}

// Metrics snapshots the fleet's aggregate counters.
func (f *Fleet) Metrics() FleetMetrics {
	m := FleetMetrics{
		Batches: f.batches.Load(),
		Ops:     f.ops.Load(),
	}
	for _, p := range f.Peers() {
		m.Peers++
		m.Withdrawals += p.withdrawals.Load()
		m.Announcements += p.announcements.Load()
		p.mu.Lock()
		ds := p.engine.Decisions()
		m.Decisions += len(ds)
		for _, d := range ds {
			m.RulesInstalled += d.RulesInstalled
		}
		if p.engine.RerouteActive() {
			m.Rerouting++
		}
		p.mu.Unlock()
	}
	return m
}

// Sync blocks until every batch enqueued before the call has been
// applied by its peer's goroutine.
func (f *Fleet) Sync() {
	for _, p := range f.Peers() {
		p.Sync()
	}
}

// Close stops every peer goroutine after its queue drains, then waits.
// The engines stay inspectable afterwards. Peers created concurrently
// with Close come out dead (Enqueue reports false) rather than leaked:
// the closed flag is published before the sweep takes each stripe
// lock, so every running goroutine is in some stripe's map by then.
func (f *Fleet) Close() {
	if !f.closed.Swap(true) {
		for i := range f.stripes {
			s := &f.stripes[i]
			s.mu.Lock()
			for _, p := range s.peers {
				p.close()
			}
			s.mu.Unlock()
		}
	}
	f.wg.Wait()
}

// Status renders a one-line fleet summary.
func (f *Fleet) Status() string {
	m := f.Metrics()
	return fmt.Sprintf("peers=%d ops=%d (wd=%d ann=%d) decisions=%d rules=%d rerouting=%d",
		m.Peers, m.Ops, m.Withdrawals, m.Announcements, m.Decisions, m.RulesInstalled, m.Rerouting)
}

func (f *Fleet) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// FleetPeer is one peer's engine plus its delivery queue. Streaming
// observations arrive as Batches on a dedicated goroutine; setup calls
// (Learn*, Provision) and inspection lock the engine directly.
type FleetPeer struct {
	key   PeerKey
	fleet *Fleet

	mu     sync.Mutex // guards engine
	engine *swiftengine.Engine

	chMu     sync.Mutex // guards ch against close-vs-send races
	chClosed bool
	ch       chan Batch

	epochMu   sync.Mutex
	epoch     time.Time
	haveEpoch bool

	withdrawals   atomic.Uint64
	announcements atomic.Uint64
	lastAt        atomic.Int64 // time.Duration of the newest applied op
}

// StreamOffset converts a source timestamp (a BMP per-peer header
// timestamp, or an arrival wall-clock for timestampless routers) into
// this peer's engine stream offset. The epoch anchors at the first
// timestamp ever seen and persists for the peer's lifetime — across
// router reconnects — and the result never runs backwards past an
// already-applied observation, so a flapping session or a router clock
// step cannot rewind the engine clock and wedge the burst detector.
func (p *FleetPeer) StreamOffset(ts time.Time) time.Duration {
	p.epochMu.Lock()
	defer p.epochMu.Unlock()
	if !p.haveEpoch {
		p.epoch = ts
		p.haveEpoch = true
	}
	off := ts.Sub(p.epoch)
	if last := time.Duration(p.lastAt.Load()); off < last {
		off = last
	}
	return off
}

// Key returns the peer's identity.
func (p *FleetPeer) Key() PeerKey { return p.key }

// run applies delivered batches until the queue closes.
func (p *FleetPeer) run() {
	defer p.fleet.wg.Done()
	for b := range p.ch {
		p.mu.Lock()
		for _, op := range b.Ops {
			if op.Withdraw {
				p.engine.ObserveWithdraw(op.At, op.Prefix)
				p.withdrawals.Add(1)
			} else {
				p.engine.ObserveAnnounce(op.At, op.Prefix, op.Path)
				p.announcements.Add(1)
			}
			p.lastAt.Store(int64(op.At))
		}
		if len(b.Ops) == 0 && b.At > 0 {
			p.engine.Tick(b.At)
		}
		p.mu.Unlock()
		if b.done != nil {
			close(b.done)
		}
	}
}

// Enqueue hands a batch to the peer goroutine, blocking when the queue
// is full (backpressure propagates to the router's TCP connection).
// It reports false after the fleet has closed.
func (p *FleetPeer) Enqueue(b Batch) bool {
	p.chMu.Lock()
	defer p.chMu.Unlock()
	if p.chClosed {
		return false
	}
	p.fleet.batches.Add(1)
	p.fleet.ops.Add(uint64(len(b.Ops)))
	p.ch <- b
	return true
}

// Sync blocks until everything enqueued before it has been applied.
func (p *FleetPeer) Sync() {
	done := make(chan struct{})
	if !p.Enqueue(Batch{done: done}) {
		return
	}
	<-done
}

func (p *FleetPeer) close() {
	p.chMu.Lock()
	defer p.chMu.Unlock()
	if !p.chClosed {
		p.chClosed = true
		close(p.ch)
	}
}

// LearnPrimary installs a table-transfer route on the peer's primary
// RIB.
func (p *FleetPeer) LearnPrimary(pfx netaddr.Prefix, path []uint32) {
	p.mu.Lock()
	p.engine.LearnPrimary(pfx, path)
	p.mu.Unlock()
}

// LearnAlternate installs a backup route offered by another neighbor.
func (p *FleetPeer) LearnAlternate(neighbor uint32, pfx netaddr.Prefix, path []uint32) {
	p.mu.Lock()
	p.engine.LearnAlternate(neighbor, pfx, path)
	p.mu.Unlock()
}

// Provisioned reports whether the engine has a compiled encoding (i.e.
// Provision has succeeded at least once).
func (p *FleetPeer) Provisioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.Scheme() != nil
}

// Provision compiles the plan and tag encoding from the loaded tables.
func (p *FleetPeer) Provision() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.Provision()
}

// Decisions snapshots the engine's decision log.
func (p *FleetPeer) Decisions() []swiftengine.Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]swiftengine.Decision(nil), p.engine.Decisions()...)
}

// RerouteActive reports whether fast-reroute rules are installed.
func (p *FleetPeer) RerouteActive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.RerouteActive()
}

// LastAt returns the stream offset of the newest applied observation.
func (p *FleetPeer) LastAt() time.Duration { return time.Duration(p.lastAt.Load()) }

// Do runs fn with the engine locked — the escape hatch for inspection
// and tests. fn must not retain the engine.
func (p *FleetPeer) Do(fn func(*swiftengine.Engine)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(p.engine)
}
