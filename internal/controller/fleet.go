package controller

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/event"
	"swift/internal/fusion"
	"swift/internal/netaddr"
	"swift/internal/rib"
	swiftengine "swift/internal/swift"
)

// PeerKey identifies one monitored peer inside a fleet: the (AS, BGP
// identifier) pair from the BMP per-peer header, which is unique per
// monitored router. It is the shared event vocabulary's peer identity.
type PeerKey = event.PeerKey

// ErrClosed is returned by Apply after the fleet has closed.
var ErrClosed = errors.New("controller: fleet closed")

// FleetObserver is the fleet's push-notification surface: the engine
// Observer hooks with the peer attributed. Hooks run synchronously on
// the peer's delivery goroutine while it holds the peer lock — they
// must be fast and must not call back into the peer or the fleet's
// per-peer accessors.
type FleetObserver struct {
	// OnBurstStart fires when a peer's detector opens a burst.
	OnBurstStart func(peer PeerKey, at time.Duration, withdrawals int)
	// OnDecision fires for every accepted inference on any peer.
	OnDecision func(peer PeerKey, d swiftengine.Decision)
	// OnBurstEnd fires when a peer's burst closes.
	OnBurstEnd func(peer PeerKey, at time.Duration, received int)
	// OnProvision fires after every successful provision pass on any
	// peer, initial and burst-end fallback alike.
	OnProvision func(peer PeerKey, info swiftengine.ProvisionInfo)
}

// LoggingFleetObserver builds the standard reporting FleetObserver:
// the engine LoggingObserver lines with the peer key prefixed.
func LoggingFleetObserver(logf func(format string, args ...any)) FleetObserver {
	perPeer := func(peer PeerKey) swiftengine.Observer {
		return swiftengine.LoggingObserver(func(format string, args ...any) {
			logf("["+peer.String()+"] "+format, args...)
		})
	}
	return FleetObserver{
		OnBurstStart: func(peer PeerKey, at time.Duration, withdrawals int) {
			perPeer(peer).OnBurstStart(at, withdrawals)
		},
		OnDecision: func(peer PeerKey, d swiftengine.Decision) {
			perPeer(peer).OnDecision(d)
		},
		OnBurstEnd: func(peer PeerKey, at time.Duration, received int) {
			perPeer(peer).OnBurstEnd(at, received)
		},
		OnProvision: func(peer PeerKey, info swiftengine.ProvisionInfo) {
			perPeer(peer).OnProvision(info)
		},
	}
}

// FleetConfig parameterizes a Fleet.
type FleetConfig struct {
	// Engine builds the engine configuration for a new peer. Nil
	// selects a default whose PrimaryNeighbor is the peer's AS.
	Engine func(key PeerKey) swiftengine.Config
	// Observer receives peer-attributed push notifications for every
	// engine in the pool. It composes with (runs before) any Observer
	// the Engine factory put on the per-peer config.
	Observer FleetObserver
	// OnPeer, when set, runs per newly created peer before it becomes
	// visible to other callers — the place to preload alternate routes
	// or other per-peer state. It runs off the fleet's locks; under a
	// creation race it may run for a candidate that is then discarded,
	// so it must only touch the peer it is given.
	OnPeer func(p *FleetPeer)
	// Fusion, when set, enables fleet-level evidence fusion: the fleet
	// owns a fusion.Aggregator over its shared pool, every engine's
	// inferences are offered as evidence through a per-peer gate, and
	// confirmed verdicts fan back into all engines as external reroutes.
	// Unless Fusion.ManualPump is set, a background goroutine publishes
	// verdicts as evidence arrives; deterministic harnesses set
	// ManualPump and call FusePump at their own barriers.
	Fusion *fusion.Config
	// QueueDepth is the per-peer batch channel depth (default 64).
	// A full queue blocks Enqueue — backpressure, never loss.
	QueueDepth int
	// Logf, when set, receives one line per fleet event.
	Logf func(format string, args ...any)
}

func (c FleetConfig) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

// fleetStripes is the lock-stripe count of the peer map. Peer lookup is
// on the per-message hot path; striping keeps concurrent router
// connections from serializing on one mutex.
const fleetStripes = 16

type fleetStripe struct {
	mu    sync.RWMutex
	peers map[PeerKey]*FleetPeer
}

// Fleet is a pool of per-peer SWIFT engines — the multi-session
// deployment of §4.1 ("a router runs one engine per session, in
// parallel") behind a single ingestion front end. Peers are created on
// first use; each owns its engine and a goroutine that applies
// delivered batches, so N peers reroute independently and in parallel.
//
// A Fleet is an event.Sink: Apply demultiplexes a batch on each event's
// Peer key, so any Source feeds a fleet exactly as it would feed one
// Engine. It is also an event.Provisioner, so table-transfer-carrying
// sources (a BMP station's in-band dump, an MRT RIB snapshot) can load
// and provision peers without knowing the pool exists.
type Fleet struct {
	cfg     FleetConfig
	pool    *rib.Pool
	stripes [fleetStripes]fleetStripe
	wg      sync.WaitGroup
	closed  atomic.Bool

	batches atomic.Uint64
	ops     atomic.Uint64

	// Evidence fusion (nil when FleetConfig.Fusion is unset). fuseKick
	// nudges the background pump after evidence changes; fuseStop ends
	// it on Close.
	fusion   *fusion.Aggregator
	fuseKick chan struct{}
	fuseStop chan struct{}
	fuseWG   sync.WaitGroup

	// Push-fed aggregates, maintained by the per-engine observers so
	// Metrics never has to lock every engine and walk its decision log.
	decisions atomic.Int64
	rules     atomic.Int64
	rerouting atomic.Int64
}

// Fleet is a stream sink and a table-transfer target, with a per-peer
// fast path; a bound FleetPeer is itself a sink.
var (
	_ event.Sink        = (*Fleet)(nil)
	_ event.Provisioner = (*Fleet)(nil)
	_ event.PeerSink    = (*Fleet)(nil)
	_ event.Sink        = (*FleetPeer)(nil)
)

// NewFleet builds an empty fleet. All peer engines share one path/link
// intern pool (unless the Engine factory supplies its own): peers
// monitoring the same routing system announce heavily overlapping AS
// paths, and interning stores each unique path once fleet-wide instead
// of once per (peer, prefix).
func NewFleet(cfg FleetConfig) *Fleet {
	f := &Fleet{cfg: cfg, pool: rib.NewPool()}
	for i := range f.stripes {
		f.stripes[i].peers = make(map[PeerKey]*FleetPeer)
	}
	if cfg.Fusion != nil {
		f.fusion = fusion.NewAggregator(*cfg.Fusion, f.pool)
		if !cfg.Fusion.ManualPump {
			f.fuseKick = make(chan struct{}, 1)
			f.fuseStop = make(chan struct{})
			f.fuseWG.Add(1)
			go f.fusePumpLoop()
		}
	}
	return f
}

// Pool returns the fleet-shared path/link intern pool.
func (f *Fleet) Pool() *rib.Pool { return f.pool }

func (f *Fleet) stripe(key PeerKey) *fleetStripe {
	h := key.AS*0x9e3779b9 ^ key.BGPID*0x85ebca6b
	return &f.stripes[h%fleetStripes]
}

// Lookup returns the peer for key if it exists.
func (f *Fleet) Lookup(key PeerKey) (*FleetPeer, bool) {
	s := f.stripe(key)
	s.mu.RLock()
	p, ok := s.peers[key]
	s.mu.RUnlock()
	return p, ok
}

// Peer returns the engine peer for key, creating it (and its delivery
// goroutine) on first use. Creation — including the OnPeer hook, which
// may be expensive (e.g. loading an alternates RIB) — runs off the
// stripe lock so it never stalls other peers' hot-path lookups; two
// racing creators both initialize a candidate and the insert
// double-checks, so OnPeer may run for a discarded candidate (it must
// only touch the peer it is given).
func (f *Fleet) Peer(key PeerKey) *FleetPeer {
	s := f.stripe(key)
	s.mu.RLock()
	p, ok := s.peers[key]
	s.mu.RUnlock()
	if ok {
		return p
	}
	cfg := swiftengine.Config{PrimaryNeighbor: key.AS}
	if f.cfg.Engine != nil {
		cfg = f.cfg.Engine(key)
	}
	if cfg.Pool == nil {
		cfg.Pool = f.pool
	}
	if f.fusion != nil && cfg.Fusion == nil {
		cfg.Fusion = f.fusion.Gate(key)
	}
	cand := &FleetPeer{
		key:   key,
		fleet: f,
		ch:    make(chan delivery, f.cfg.queueDepth()),
		dead:  make(chan struct{}),
	}
	cfg.Observer = f.wireObserver(cand, cfg.Observer)
	cand.engine = swiftengine.New(cfg)
	if f.cfg.OnPeer != nil {
		f.cfg.OnPeer(cand)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok = s.peers[key]; ok {
		// Lost the creation race: discard cand, returning whatever pool
		// references OnPeer loaded into its engine (an alternates RIB
		// can be a full table's worth of interned paths).
		cand.engine.Release()
		return p
	}
	if f.closed.Load() {
		// The fleet closed while we were creating: register the peer
		// dead (Enqueue reports false, no goroutine) so a racing Close
		// never misses a running goroutine in its sweep. The closed
		// store happens before Close takes this stripe's lock, so
		// either we see it here or Close's sweep sees the map entry.
		cand.closing.Store(true)
		close(cand.dead)
		s.peers[key] = cand
		return cand
	}
	s.peers[key] = cand
	f.wg.Add(1)
	go cand.run()
	f.logf("fleet: peer %s created", key)
	return cand
}

// ClosePeer tears one session down: the peer leaves the pool
// immediately (later traffic for the key builds a fresh peer), its
// queue drains on the delivery goroutine, and the engine's path
// references are released back to the shared pool. It reports whether
// the key named a live peer. Teardown is asynchronous; Close still
// waits for every torn-down goroutine.
func (f *Fleet) ClosePeer(key PeerKey) bool {
	s := f.stripe(key)
	s.mu.Lock()
	p, ok := s.peers[key]
	if ok {
		delete(s.peers, key)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	p.close(true)
	if f.fusion != nil {
		// The session's evidence stops corroborating anything; links it
		// alone supported drop from the verdict on the next pump.
		f.fusion.Retract(key)
		f.kickFusePump()
	}
	f.logf("fleet: peer %s closed", key)
	return true
}

// wireObserver composes the fleet's aggregate accounting and the
// user's FleetObserver with whatever Observer the engine factory set.
// Every hook runs while the peer lock is held (engines only run under
// it), so the peer-local rerouting flag needs no extra synchronization.
func (f *Fleet) wireObserver(p *FleetPeer, user swiftengine.Observer) swiftengine.Observer {
	return swiftengine.Observer{
		OnBurstStart: func(at time.Duration, withdrawals int) {
			if f.fusion != nil {
				f.fusion.BurstStart(p.key, at)
			}
			if f.cfg.Observer.OnBurstStart != nil {
				f.cfg.Observer.OnBurstStart(p.key, at, withdrawals)
			}
			if user.OnBurstStart != nil {
				user.OnBurstStart(at, withdrawals)
			}
		},
		OnDecision: func(d swiftengine.Decision) {
			f.decisions.Add(1)
			f.rules.Add(int64(d.RulesInstalled))
			if !p.rerouting {
				p.rerouting = true
				f.rerouting.Add(1)
			}
			if f.fusion != nil && !d.External {
				// The evidence itself was recorded synchronously by the
				// engine's gate Propose; only the cross-peer fan-out is
				// deferred to the pump (applying verdicts here would take
				// other peers' locks while holding this one).
				f.kickFusePump()
			}
			if f.cfg.Observer.OnDecision != nil {
				f.cfg.Observer.OnDecision(p.key, d)
			}
			if user.OnDecision != nil {
				user.OnDecision(d)
			}
		},
		OnBurstEnd: func(at time.Duration, received int) {
			if p.rerouting {
				p.rerouting = false
				f.rerouting.Add(-1)
			}
			if f.fusion != nil {
				f.fusion.BurstEnd(p.key, at)
				f.kickFusePump()
			}
			if f.cfg.Observer.OnBurstEnd != nil {
				f.cfg.Observer.OnBurstEnd(p.key, at, received)
			}
			if user.OnBurstEnd != nil {
				user.OnBurstEnd(at, received)
			}
		},
		OnProvision: func(info swiftengine.ProvisionInfo) {
			if f.cfg.Observer.OnProvision != nil {
				f.cfg.Observer.OnProvision(p.key, info)
			}
			if user.OnProvision != nil {
				user.OnProvision(info)
			}
		},
	}
}

// Apply demultiplexes one event batch across the pool — the Sink
// surface that makes a Fleet and an Engine interchangeable behind any
// Source. Events are routed on their Peer key (peers are created on
// first use) and enqueued to the per-peer delivery goroutines; each
// peer's relative event order is preserved. A full peer queue blocks —
// backpressure, never loss. Apply reports ErrClosed after Close.
func (f *Fleet) Apply(b event.Batch) error {
	if len(b) == 0 {
		return nil
	}
	// Fast path: sources flush per-peer batches, so a batch is almost
	// always single-peer.
	key := b[0].Peer
	mixed := false
	for i := 1; i < len(b); i++ {
		if b[i].Peer != key {
			mixed = true
			break
		}
	}
	if !mixed {
		return f.deliver(key, b)
	}
	// Mixed batch: split per peer in first-seen order.
	byPeer := make(map[PeerKey]event.Batch)
	var order []PeerKey
	for _, ev := range b {
		if _, ok := byPeer[ev.Peer]; !ok {
			order = append(order, ev.Peer)
		}
		byPeer[ev.Peer] = append(byPeer[ev.Peer], ev)
	}
	for _, k := range order {
		if err := f.deliver(k, byPeer[k]); err != nil {
			return err
		}
	}
	return nil
}

// deliver routes one single-peer batch, re-resolving the peer when a
// concurrent ClosePeer tore it down mid-flight (the re-resolution
// builds the key's next session).
func (f *Fleet) deliver(key PeerKey, b event.Batch) error {
	for {
		if f.closed.Load() {
			return ErrClosed
		}
		if f.Peer(key).Enqueue(b) {
			return nil
		}
	}
}

// PeerSink binds the keyed peer's delivery queue as a dedicated sink —
// the event.PeerSink fast path that lets per-peer sources (the BMP
// station) skip the per-batch demux and map lookup of Apply.
func (f *Fleet) PeerSink(peer PeerKey) event.Sink { return f.Peer(peer) }

// Apply delivers one batch straight to this peer's queue — the
// event.Sink surface of a bound peer. The batch must carry only this
// peer's events; attribution is not re-checked.
func (p *FleetPeer) Apply(b event.Batch) error {
	if !p.Enqueue(b) {
		return ErrClosed
	}
	return nil
}

// Learn installs one initial-table route on the keyed peer's primary
// RIB — the event.Provisioner surface for table-transfer sources.
func (f *Fleet) Learn(peer PeerKey, p netaddr.Prefix, path []uint32) {
	f.Peer(peer).LearnPrimary(p, path)
}

// Provisioned reports whether the keyed peer's plan is compiled.
func (f *Fleet) Provisioned(peer PeerKey) bool {
	return f.Peer(peer).Provisioned()
}

// Provision compiles the keyed peer's plan from its loaded tables.
func (f *Fleet) Provision(peer PeerKey) error {
	return f.Peer(peer).Provision()
}

// Peers snapshots the pool, sorted by key for stable iteration.
func (f *Fleet) Peers() []*FleetPeer {
	var out []*FleetPeer
	for i := range f.stripes {
		s := &f.stripes[i]
		s.mu.RLock()
		for _, p := range s.peers {
			out = append(out, p)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].key, out[j].key
		if a.AS != b.AS {
			return a.AS < b.AS
		}
		return a.BGPID < b.BGPID
	})
	return out
}

// Len returns the number of peers in the pool.
func (f *Fleet) Len() int {
	n := 0
	for i := range f.stripes {
		s := &f.stripes[i]
		s.mu.RLock()
		n += len(s.peers)
		s.mu.RUnlock()
	}
	return n
}

// PeerDecision is one engine decision attributed to its peer.
type PeerDecision struct {
	Peer PeerKey
	swiftengine.Decision
}

// Decisions aggregates every peer engine's decision log, ordered by
// peer then decision time. Live consumers should prefer the push-based
// FleetObserver.OnDecision hook; this accessor locks each engine in
// turn and copies.
func (f *Fleet) Decisions() []PeerDecision {
	var out []PeerDecision
	for _, p := range f.Peers() {
		for _, d := range p.Decisions() {
			out = append(out, PeerDecision{Peer: p.key, Decision: d})
		}
	}
	return out
}

// FleetMetrics is an aggregate snapshot across the pool.
type FleetMetrics struct {
	Peers          int
	Batches        uint64
	Ops            uint64
	Withdrawals    uint64
	Announcements  uint64
	Decisions      int
	RulesInstalled int
	Rerouting      int // peers with fast-reroute rules installed now
	// UniquePaths and UniqueLinks are the fleet pool's live
	// cardinalities — the denominator of the interning win: total
	// routes across peers divided by UniquePaths is the sharing factor.
	UniquePaths int
	UniqueLinks int
}

// Metrics snapshots the fleet's aggregate counters. The decision and
// rule aggregates are push-fed by the per-engine observers, so the
// snapshot never locks an engine or walks a decision log.
func (f *Fleet) Metrics() FleetMetrics {
	ps := f.pool.Stats()
	m := FleetMetrics{
		Batches:        f.batches.Load(),
		Ops:            f.ops.Load(),
		Decisions:      int(f.decisions.Load()),
		RulesInstalled: int(f.rules.Load()),
		Rerouting:      int(f.rerouting.Load()),
		UniquePaths:    ps.Paths,
		UniqueLinks:    ps.Links,
	}
	for _, p := range f.Peers() {
		m.Peers++
		m.Withdrawals += p.withdrawals.Load()
		m.Announcements += p.announcements.Load()
	}
	return m
}

// Sync blocks until every batch enqueued before the call has been
// applied by its peer's goroutine.
func (f *Fleet) Sync() {
	for _, p := range f.Peers() {
		p.Sync()
	}
}

// Close stops every peer goroutine after its queue drains, then waits.
// The engines stay inspectable afterwards (unlike ClosePeer, Close does
// not release them). Peers created concurrently with Close come out
// dead (Enqueue reports false) rather than leaked: the closed flag is
// published before the sweep takes each stripe lock, so every running
// goroutine is in some stripe's map by then.
func (f *Fleet) Close() {
	if !f.closed.Swap(true) {
		if f.fuseStop != nil {
			close(f.fuseStop)
		}
		for i := range f.stripes {
			// Snapshot under the stripe lock, close outside it: the
			// stop-sentinel send can block on a full queue whose runner
			// may be in an observer hook touching fleet accessors, and
			// those must not deadlock against a held stripe lock.
			s := &f.stripes[i]
			s.mu.Lock()
			peers := make([]*FleetPeer, 0, len(s.peers))
			for _, p := range s.peers {
				peers = append(peers, p)
			}
			s.mu.Unlock()
			for _, p := range peers {
				p.close(false)
			}
		}
	}
	f.wg.Wait()
	f.fuseWG.Wait()
}

// Status renders a one-line fleet summary.
func (f *Fleet) Status() string {
	m := f.Metrics()
	return fmt.Sprintf("peers=%d ops=%d (wd=%d ann=%d) decisions=%d rules=%d rerouting=%d paths=%d links=%d",
		m.Peers, m.Ops, m.Withdrawals, m.Announcements, m.Decisions, m.RulesInstalled, m.Rerouting,
		m.UniquePaths, m.UniqueLinks)
}

func (f *Fleet) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// delivery is one hand-off to a peer goroutine: an event batch, a pure
// synchronization point (nil batch, done channel), or the teardown
// sentinel.
type delivery struct {
	batch   event.Batch
	done    chan<- struct{} // closed after the batch is applied (Sync)
	stop    bool            // teardown sentinel: drain, then exit
	release bool            // with stop: release the engine's pool refs
}

// FleetPeer is one peer's engine plus its delivery queue. Streaming
// events arrive as event.Batches on a dedicated goroutine; setup calls
// (Learn*, Provision) and inspection lock the engine directly.
//
// The delivery path is lock-free: Enqueue is an atomic in-flight count,
// one closing-flag load and a channel send — no per-session mutex on
// the demux path, so concurrent sources feeding different peers (or
// even one peer) never serialize on anything but the queue itself.
// Teardown closes dead, waits out the in-flight senders, then drains:
// a batch either lands and is applied, or Enqueue reports false.
type FleetPeer struct {
	key   PeerKey
	fleet *Fleet

	mu     sync.Mutex // guards engine (and rerouting, via the observer)
	engine *swiftengine.Engine
	// rerouting mirrors the engine's reroute state for the fleet's
	// aggregate gauge. It is only touched by the wired observer, which
	// runs under mu.
	rerouting bool

	ch      chan delivery
	dead    chan struct{} // closed by the runner once teardown begins
	closing atomic.Bool   // set by close(); new senders refuse
	senders atomic.Int64  // in-flight Enqueue/Sync calls

	withdrawals   atomic.Uint64
	announcements atomic.Uint64
	lastAt        atomic.Int64 // time.Duration of the newest applied event
}

// Key returns the peer's identity.
func (p *FleetPeer) Key() PeerKey { return p.key }

// run applies delivered batches until the teardown sentinel arrives.
func (p *FleetPeer) run() {
	defer p.fleet.wg.Done()
	for d := range p.ch {
		if d.stop {
			p.shutdown(d.release)
			return
		}
		p.apply(d)
	}
}

// shutdown completes teardown on the runner: publish death, wait out
// the in-flight senders (their batches either landed in the queue or
// were refused), drain what landed, and optionally release the engine.
func (p *FleetPeer) shutdown(release bool) {
	close(p.dead)
	for p.senders.Load() != 0 {
		runtime.Gosched()
	}
	for {
		select {
		case d := <-p.ch:
			if !d.stop {
				p.apply(d)
			}
		default:
			if release {
				p.mu.Lock()
				p.engine.Release()
				p.mu.Unlock()
			}
			return
		}
	}
}

func (p *FleetPeer) apply(d delivery) {
	if len(d.batch) > 0 {
		var wd, ann uint64
		last := time.Duration(-1)
		for i := range d.batch {
			switch d.batch[i].Kind {
			case event.KindWithdraw:
				wd++
			case event.KindAnnounce:
				ann++
			default:
				continue
			}
			last = d.batch[i].At
		}
		p.mu.Lock()
		err := p.engine.Apply(d.batch)
		p.mu.Unlock()
		if err != nil {
			p.fleet.logf("fleet: peer %s: %v", p.key, err)
		}
		p.withdrawals.Add(wd)
		p.announcements.Add(ann)
		p.fleet.ops.Add(wd + ann)
		if last >= 0 {
			p.lastAt.Store(int64(last))
		}
	}
	if d.done != nil {
		close(d.done)
	}
}

// Enqueue hands a batch to the peer goroutine, blocking when the queue
// is full (backpressure propagates to the router's TCP connection).
// It reports false after the peer (or its fleet) has closed; a false
// return means the batch was NOT delivered. The batch is retained until
// applied; callers must not reuse its backing array. The ops counter
// (withdraw/announce events, ticks excluded) advances as the peer
// goroutine applies the batch.
func (p *FleetPeer) Enqueue(b event.Batch) bool {
	p.senders.Add(1)
	defer p.senders.Add(-1)
	if p.closing.Load() {
		return false
	}
	select {
	case p.ch <- delivery{batch: b}:
		p.fleet.batches.Add(1)
		return true
	case <-p.dead:
		return false
	}
}

// Sync blocks until everything enqueued before it has been applied. It
// returns immediately on a closed peer.
func (p *FleetPeer) Sync() {
	p.senders.Add(1)
	if p.closing.Load() {
		p.senders.Add(-1)
		return
	}
	done := make(chan struct{})
	select {
	case p.ch <- delivery{done: done}:
		p.senders.Add(-1)
		<-done
	case <-p.dead:
		p.senders.Add(-1)
	}
}

// close begins teardown: refuse new senders, then hand the runner the
// stop sentinel (the runner is alive until it processes one, so the
// send always completes). Idempotent.
func (p *FleetPeer) close(release bool) {
	if p.closing.Swap(true) {
		return
	}
	p.ch <- delivery{stop: true, release: release}
}

// LearnPrimary installs a table-transfer route on the peer's primary
// RIB.
func (p *FleetPeer) LearnPrimary(pfx netaddr.Prefix, path []uint32) {
	p.mu.Lock()
	p.engine.LearnPrimary(pfx, path)
	p.mu.Unlock()
}

// LearnAlternate installs a backup route offered by another neighbor.
func (p *FleetPeer) LearnAlternate(neighbor uint32, pfx netaddr.Prefix, path []uint32) {
	p.mu.Lock()
	p.engine.LearnAlternate(neighbor, pfx, path)
	p.mu.Unlock()
}

// Provisioned reports whether the engine has a compiled encoding (i.e.
// Provision has succeeded at least once).
func (p *FleetPeer) Provisioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.Scheme() != nil
}

// Provision compiles the plan and tag encoding from the loaded tables.
func (p *FleetPeer) Provision() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.Provision()
}

// Decisions snapshots the engine's decision log.
func (p *FleetPeer) Decisions() []swiftengine.Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.Decisions()
}

// RerouteActive reports whether fast-reroute rules are installed.
func (p *FleetPeer) RerouteActive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.RerouteActive()
}

// LastAt returns the stream offset of the newest applied observation.
func (p *FleetPeer) LastAt() time.Duration { return time.Duration(p.lastAt.Load()) }

// Do runs fn with the engine locked — the escape hatch for inspection
// and tests. fn must not retain the engine.
func (p *FleetPeer) Do(fn func(*swiftengine.Engine)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(p.engine)
}
