package controller

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/event"
	"swift/internal/fusion"
	"swift/internal/netaddr"
	"swift/internal/rib"
	"swift/internal/ring"
	swiftengine "swift/internal/swift"
)

// PeerKey identifies one monitored peer inside a fleet: the (AS, BGP
// identifier) pair from the BMP per-peer header, which is unique per
// monitored router. It is the shared event vocabulary's peer identity.
type PeerKey = event.PeerKey

// ErrClosed is returned by Apply after the fleet has closed.
var ErrClosed = errors.New("controller: fleet closed")

// FleetObserver is the fleet's push-notification surface: the engine
// Observer hooks with the peer attributed. Hooks run synchronously on
// the peer's delivery goroutine while it holds the peer lock — they
// must be fast and must not call back into the peer or the fleet's
// per-peer accessors.
type FleetObserver struct {
	// OnBurstStart fires when a peer's detector opens a burst.
	OnBurstStart func(peer PeerKey, at time.Duration, withdrawals int)
	// OnDecision fires for every accepted inference on any peer.
	OnDecision func(peer PeerKey, d swiftengine.Decision)
	// OnBurstEnd fires when a peer's burst closes.
	OnBurstEnd func(peer PeerKey, at time.Duration, received int)
	// OnProvision fires after every successful provision pass on any
	// peer, initial and burst-end fallback alike.
	OnProvision func(peer PeerKey, info swiftengine.ProvisionInfo)
}

// LoggingFleetObserver builds the standard reporting FleetObserver:
// the engine LoggingObserver lines with the peer key prefixed.
func LoggingFleetObserver(logf func(format string, args ...any)) FleetObserver {
	perPeer := func(peer PeerKey) swiftengine.Observer {
		return swiftengine.LoggingObserver(func(format string, args ...any) {
			logf("["+peer.String()+"] "+format, args...)
		})
	}
	return FleetObserver{
		OnBurstStart: func(peer PeerKey, at time.Duration, withdrawals int) {
			perPeer(peer).OnBurstStart(at, withdrawals)
		},
		OnDecision: func(peer PeerKey, d swiftengine.Decision) {
			perPeer(peer).OnDecision(d)
		},
		OnBurstEnd: func(peer PeerKey, at time.Duration, received int) {
			perPeer(peer).OnBurstEnd(at, received)
		},
		OnProvision: func(peer PeerKey, info swiftengine.ProvisionInfo) {
			perPeer(peer).OnProvision(info)
		},
	}
}

// FleetConfig parameterizes a Fleet.
type FleetConfig struct {
	// Engine builds the engine configuration for a new peer. Nil
	// selects a default whose PrimaryNeighbor is the peer's AS.
	Engine func(key PeerKey) swiftengine.Config
	// Observer receives peer-attributed push notifications for every
	// engine in the pool. It composes with (runs before) any Observer
	// the Engine factory put on the per-peer config.
	Observer FleetObserver
	// OnPeer, when set, runs per newly created peer before it becomes
	// visible to other callers — the place to preload alternate routes
	// or other per-peer state. It runs off the fleet's locks; under a
	// creation race it may run for a candidate that is then discarded,
	// so it must only touch the peer it is given.
	OnPeer func(p *FleetPeer)
	// Fusion, when set, enables fleet-level evidence fusion: the fleet
	// owns a fusion.Aggregator over its shared pool, every engine's
	// inferences are offered as evidence through a per-peer gate, and
	// confirmed verdicts fan back into all engines as external reroutes.
	// Unless Fusion.ManualPump is set, a background goroutine publishes
	// verdicts as evidence arrives; deterministic harnesses set
	// ManualPump and call FusePump at their own barriers.
	Fusion *fusion.Config
	// QueueDepth is the per-shard delivery ring depth (default 64,
	// rounded up to a power of two). A full ring blocks Enqueue —
	// backpressure, never loss.
	QueueDepth int
	// Workers is the number of dataplane worker goroutines, each owning
	// one shard of the peer engines (default GOMAXPROCS). Peers are
	// pinned to shards by a stable key hash, so one peer's batches are
	// always applied by one worker, in order.
	Workers int
	// Logf, when set, receives one line per fleet event.
	Logf func(format string, args ...any)
}

func (c FleetConfig) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

func (c FleetConfig) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// fleetStripes is the lock-stripe count of the peer map. Peer lookup is
// on the per-message hot path; striping keeps concurrent router
// connections from serializing on one mutex.
const fleetStripes = 16

type fleetStripe struct {
	mu    sync.RWMutex
	peers map[PeerKey]*FleetPeer
}

// Fleet is a pool of per-peer SWIFT engines — the multi-session
// deployment of §4.1 ("a router runs one engine per session, in
// parallel") behind a single ingestion front end. Peers are created on
// first use and pinned to one of a fixed set of dataplane workers
// (NDN-DPDK's input/forward thread split): each worker owns a shard of
// the engines and drains pre-demuxed per-peer batches from its own
// bounded ring, so concurrent bursts on different peers — including
// their burst-end provisioning passes — overlap across workers while
// one peer's events stay strictly ordered.
//
// A Fleet is an event.Sink: Apply demultiplexes a batch on each event's
// Peer key, so any Source feeds a fleet exactly as it would feed one
// Engine. It is also an event.Provisioner, so table-transfer-carrying
// sources (a BMP station's in-band dump, an MRT RIB snapshot) can load
// and provision peers without knowing the pool exists.
type Fleet struct {
	cfg     FleetConfig
	pool    *rib.Pool
	stripes [fleetStripes]fleetStripe
	workers []*fleetWorker
	wg      sync.WaitGroup
	closed  atomic.Bool

	batches atomic.Uint64
	ops     atomic.Uint64

	// Evidence fusion (nil when FleetConfig.Fusion is unset). fuseKick
	// nudges the background pump after evidence changes; fuseStop ends
	// it on Close.
	fusion   *fusion.Aggregator
	fuseKick chan struct{}
	fuseStop chan struct{}
	fuseWG   sync.WaitGroup

	// Push-fed aggregates, maintained by the per-engine observers so
	// Metrics never has to lock every engine and walk its decision log.
	decisions atomic.Int64
	rules     atomic.Int64
	rerouting atomic.Int64
}

// Fleet is a stream sink and a table-transfer target, with a per-peer
// fast path; a bound FleetPeer is itself a sink.
var (
	_ event.Sink        = (*Fleet)(nil)
	_ event.Provisioner = (*Fleet)(nil)
	_ event.PeerSink    = (*Fleet)(nil)
	_ event.Sink        = (*FleetPeer)(nil)
)

// NewFleet builds an empty fleet. All peer engines share one path/link
// intern pool (unless the Engine factory supplies its own): peers
// monitoring the same routing system announce heavily overlapping AS
// paths, and interning stores each unique path once fleet-wide instead
// of once per (peer, prefix).
func NewFleet(cfg FleetConfig) *Fleet {
	f := &Fleet{cfg: cfg, pool: rib.NewPool()}
	for i := range f.stripes {
		f.stripes[i].peers = make(map[PeerKey]*FleetPeer)
	}
	f.workers = make([]*fleetWorker, cfg.workerCount())
	for i := range f.workers {
		w := &fleetWorker{fleet: f, idx: i, ring: ring.New[delivery](cfg.queueDepth())}
		f.workers[i] = w
		f.wg.Add(1)
		go w.run()
	}
	if cfg.Fusion != nil {
		f.fusion = fusion.NewAggregator(*cfg.Fusion, f.pool)
		if !cfg.Fusion.ManualPump {
			f.fuseKick = make(chan struct{}, 1)
			f.fuseStop = make(chan struct{})
			f.fuseWG.Add(1)
			go f.fusePumpLoop()
		}
	}
	return f
}

// Pool returns the fleet-shared path/link intern pool.
func (f *Fleet) Pool() *rib.Pool { return f.pool }

func (f *Fleet) stripe(key PeerKey) *fleetStripe {
	h := key.AS*0x9e3779b9 ^ key.BGPID*0x85ebca6b
	return &f.stripes[h%fleetStripes]
}

// worker returns the dataplane worker the key's peer is pinned to. The
// assignment is a pure function of the key, so a peer torn down and
// re-created lands on the same shard — its new session's batches queue
// behind the old session's drain, never beside it.
func (f *Fleet) worker(key PeerKey) *fleetWorker {
	h := key.AS*0x9e3779b9 ^ key.BGPID*0x85ebca6b
	return f.workers[h%uint32(len(f.workers))]
}

// fleetWorker is one dataplane shard: a goroutine draining deliveries
// for its pinned peers from a bounded ring. Engines only ever run on
// their shard's worker (setup and inspection calls still lock the
// engine directly), so per-peer FIFO comes from ring order alone.
type fleetWorker struct {
	fleet *Fleet
	idx   int
	ring  *ring.Ring[delivery]
	// full counts pushes that found the ring full and had to block —
	// the backpressure signal surfaced on /metrics.
	full atomic.Uint64
}

// run drains the shard ring until the fleet closes it, then finishes
// whatever had already landed — drain-then-exit, never loss.
func (w *fleetWorker) run() {
	defer w.fleet.wg.Done()
	buf := make([]delivery, 0, 32)
	for {
		buf = w.ring.PopBatchWait(buf)
		if len(buf) == 0 {
			return
		}
		for i := range buf {
			w.process(buf[i])
			buf[i] = delivery{} // drop the batch reference
		}
	}
}

func (w *fleetWorker) process(d delivery) {
	if d.stop {
		// Peer teardown sentinel: every batch the peer's session ever
		// enqueued sits before this in the ring (ClosePeer waited out
		// in-flight senders before pushing it), so the engine is idle.
		if d.release {
			d.peer.mu.Lock()
			d.peer.engine.Release()
			d.peer.mu.Unlock()
			if f := w.fleet; f.fusion != nil {
				// The session's evidence stops corroborating anything;
				// links it alone supported drop on the next pump. A
				// successor session for the key enqueues behind this
				// sentinel, so its evidence survives the retraction.
				f.fusion.Retract(d.peer.key)
				f.kickFusePump()
			}
		}
		return
	}
	if d.peer == nil {
		// Fleet-level sync barrier.
		if d.done != nil {
			close(d.done)
		}
		return
	}
	d.peer.apply(d)
}

// Lookup returns the peer for key if it exists.
func (f *Fleet) Lookup(key PeerKey) (*FleetPeer, bool) {
	s := f.stripe(key)
	s.mu.RLock()
	p, ok := s.peers[key]
	s.mu.RUnlock()
	return p, ok
}

// Peer returns the engine peer for key, creating it on first use and
// pinning it to its shard worker. Creation — including the OnPeer
// hook, which may be expensive (e.g. loading an alternates RIB) — runs
// off the stripe lock so it never stalls other peers' hot-path
// lookups; two racing creators both initialize a candidate and the
// insert double-checks, so OnPeer may run for a discarded candidate
// (it must only touch the peer it is given).
func (f *Fleet) Peer(key PeerKey) *FleetPeer {
	s := f.stripe(key)
	s.mu.RLock()
	p, ok := s.peers[key]
	s.mu.RUnlock()
	if ok {
		return p
	}
	cfg := swiftengine.Config{PrimaryNeighbor: key.AS}
	if f.cfg.Engine != nil {
		cfg = f.cfg.Engine(key)
	}
	if cfg.Pool == nil {
		cfg.Pool = f.pool
	}
	if f.fusion != nil && cfg.Fusion == nil {
		cfg.Fusion = f.fusion.Gate(key)
	}
	cand := &FleetPeer{
		key:    key,
		fleet:  f,
		worker: f.worker(key),
	}
	cfg.Observer = f.wireObserver(cand, cfg.Observer)
	cand.engine = swiftengine.New(cfg)
	if f.cfg.OnPeer != nil {
		f.cfg.OnPeer(cand)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok = s.peers[key]; ok {
		// Lost the creation race: discard cand, returning whatever pool
		// references OnPeer loaded into its engine (an alternates RIB
		// can be a full table's worth of interned paths).
		cand.engine.Release()
		return p
	}
	if f.closed.Load() {
		// The fleet closed while we were creating: register the peer
		// dead (Enqueue reports false) so its batches are refused
		// rather than landing on a closed ring. The closed store
		// happens before Close takes this stripe's lock, so either we
		// see it here or Close's sweep sees the map entry.
		cand.closing.Store(true)
		s.peers[key] = cand
		return cand
	}
	s.peers[key] = cand
	f.logf("fleet: peer %s created", key)
	return cand
}

// ClosePeer tears one session down: the peer leaves the pool
// immediately (later traffic for the key builds a fresh peer), its
// in-flight batches drain on the shard worker, and the engine's path
// references are released back to the shared pool. It reports whether
// the key named a live peer. Teardown is asynchronous; the release
// happens once the worker reaches the peer's stop sentinel, behind
// everything its session enqueued.
func (f *Fleet) ClosePeer(key PeerKey) bool {
	s := f.stripe(key)
	s.mu.Lock()
	p, ok := s.peers[key]
	if ok {
		delete(s.peers, key)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	// Evidence retraction rides the stop sentinel: the worker retracts
	// after the session's last batch has applied, so a burst observed
	// mid-drain cannot re-register the peer behind the retraction.
	p.close(true)
	f.logf("fleet: peer %s closed", key)
	return true
}

// wireObserver composes the fleet's aggregate accounting and the
// user's FleetObserver with whatever Observer the engine factory set.
// Every hook runs while the peer lock is held (engines only run under
// it), so the peer-local rerouting flag needs no extra synchronization.
func (f *Fleet) wireObserver(p *FleetPeer, user swiftengine.Observer) swiftengine.Observer {
	return swiftengine.Observer{
		OnBurstStart: func(at time.Duration, withdrawals int) {
			if f.fusion != nil {
				f.fusion.BurstStart(p.key, at)
			}
			if f.cfg.Observer.OnBurstStart != nil {
				f.cfg.Observer.OnBurstStart(p.key, at, withdrawals)
			}
			if user.OnBurstStart != nil {
				user.OnBurstStart(at, withdrawals)
			}
		},
		OnDecision: func(d swiftengine.Decision) {
			f.decisions.Add(1)
			f.rules.Add(int64(d.RulesInstalled))
			if !p.rerouting {
				p.rerouting = true
				f.rerouting.Add(1)
			}
			if f.fusion != nil && !d.External {
				// The evidence itself was recorded synchronously by the
				// engine's gate Propose; only the cross-peer fan-out is
				// deferred to the pump (applying verdicts here would take
				// other peers' locks while holding this one).
				f.kickFusePump()
			}
			if f.cfg.Observer.OnDecision != nil {
				f.cfg.Observer.OnDecision(p.key, d)
			}
			if user.OnDecision != nil {
				user.OnDecision(d)
			}
		},
		OnBurstEnd: func(at time.Duration, received int) {
			if p.rerouting {
				p.rerouting = false
				f.rerouting.Add(-1)
			}
			if f.fusion != nil {
				f.fusion.BurstEnd(p.key, at)
				f.kickFusePump()
			}
			if f.cfg.Observer.OnBurstEnd != nil {
				f.cfg.Observer.OnBurstEnd(p.key, at, received)
			}
			if user.OnBurstEnd != nil {
				user.OnBurstEnd(at, received)
			}
		},
		OnProvision: func(info swiftengine.ProvisionInfo) {
			if f.cfg.Observer.OnProvision != nil {
				f.cfg.Observer.OnProvision(p.key, info)
			}
			if user.OnProvision != nil {
				user.OnProvision(info)
			}
		},
	}
}

// Apply demultiplexes one event batch across the pool — the Sink
// surface that makes a Fleet and an Engine interchangeable behind any
// Source. Events are routed on their Peer key (peers are created on
// first use) and enqueued to the shard rings; each peer's relative
// event order is preserved. A full shard ring blocks — backpressure,
// never loss. Apply reports ErrClosed after Close.
func (f *Fleet) Apply(b event.Batch) error {
	if len(b) == 0 {
		return nil
	}
	// Deliver maximal single-peer runs as subslices of b. Sources flush
	// per-peer batches, so the whole batch is almost always one run;
	// interleaved batches split with zero allocations because a batch
	// is retained until applied anyway — aliasing it is the contract.
	start := 0
	for i := 1; i <= len(b); i++ {
		if i < len(b) && b[i].Peer == b[start].Peer {
			continue
		}
		if err := f.deliver(b[start].Peer, b[start:i:i]); err != nil {
			return err
		}
		start = i
	}
	return nil
}

// deliver routes one single-peer batch, re-resolving the peer when a
// concurrent ClosePeer tore it down mid-flight (the re-resolution
// builds the key's next session).
func (f *Fleet) deliver(key PeerKey, b event.Batch) error {
	for {
		if f.closed.Load() {
			return ErrClosed
		}
		if f.Peer(key).Enqueue(b) {
			return nil
		}
	}
}

// PeerSink binds the keyed peer's delivery queue as a dedicated sink —
// the event.PeerSink fast path that lets per-peer sources (the BMP
// station) skip the per-batch demux and map lookup of Apply.
func (f *Fleet) PeerSink(peer PeerKey) event.Sink { return f.Peer(peer) }

// Apply delivers one batch straight to this peer's queue — the
// event.Sink surface of a bound peer. The batch must carry only this
// peer's events; attribution is not re-checked.
func (p *FleetPeer) Apply(b event.Batch) error {
	if !p.Enqueue(b) {
		return ErrClosed
	}
	return nil
}

// Learn installs one initial-table route on the keyed peer's primary
// RIB — the event.Provisioner surface for table-transfer sources.
func (f *Fleet) Learn(peer PeerKey, p netaddr.Prefix, path []uint32) {
	f.Peer(peer).LearnPrimary(p, path)
}

// Provisioned reports whether the keyed peer's plan is compiled.
func (f *Fleet) Provisioned(peer PeerKey) bool {
	return f.Peer(peer).Provisioned()
}

// Provision compiles the keyed peer's plan from its loaded tables.
func (f *Fleet) Provision(peer PeerKey) error {
	return f.Peer(peer).Provision()
}

// Peers snapshots the pool, sorted by key for stable iteration.
func (f *Fleet) Peers() []*FleetPeer {
	var out []*FleetPeer
	for i := range f.stripes {
		s := &f.stripes[i]
		s.mu.RLock()
		for _, p := range s.peers {
			out = append(out, p)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].key, out[j].key
		if a.AS != b.AS {
			return a.AS < b.AS
		}
		return a.BGPID < b.BGPID
	})
	return out
}

// Len returns the number of peers in the pool.
func (f *Fleet) Len() int {
	n := 0
	for i := range f.stripes {
		s := &f.stripes[i]
		s.mu.RLock()
		n += len(s.peers)
		s.mu.RUnlock()
	}
	return n
}

// PeerDecision is one engine decision attributed to its peer.
type PeerDecision struct {
	Peer PeerKey
	swiftengine.Decision
}

// Decisions aggregates every peer engine's decision log, ordered by
// peer then decision time. Live consumers should prefer the push-based
// FleetObserver.OnDecision hook; this accessor locks each engine in
// turn and copies.
func (f *Fleet) Decisions() []PeerDecision {
	var out []PeerDecision
	for _, p := range f.Peers() {
		for _, d := range p.Decisions() {
			out = append(out, PeerDecision{Peer: p.key, Decision: d})
		}
	}
	return out
}

// FleetMetrics is an aggregate snapshot across the pool.
type FleetMetrics struct {
	Peers          int
	Batches        uint64
	Ops            uint64
	Withdrawals    uint64
	Announcements  uint64
	Decisions      int
	RulesInstalled int
	Rerouting      int // peers with fast-reroute rules installed now
	// UniquePaths and UniqueLinks are the fleet pool's live
	// cardinalities — the denominator of the interning win: total
	// routes across peers divided by UniquePaths is the sharing factor.
	UniquePaths int
	UniqueLinks int
}

// Metrics snapshots the fleet's aggregate counters. The decision and
// rule aggregates are push-fed by the per-engine observers, so the
// snapshot never locks an engine or walks a decision log.
func (f *Fleet) Metrics() FleetMetrics {
	ps := f.pool.Stats()
	m := FleetMetrics{
		Batches:        f.batches.Load(),
		Ops:            f.ops.Load(),
		Decisions:      int(f.decisions.Load()),
		RulesInstalled: int(f.rules.Load()),
		Rerouting:      int(f.rerouting.Load()),
		UniquePaths:    ps.Paths,
		UniqueLinks:    ps.Links,
	}
	for _, p := range f.Peers() {
		m.Peers++
		m.Withdrawals += p.withdrawals.Load()
		m.Announcements += p.announcements.Load()
	}
	return m
}

// Sync blocks until every batch enqueued before the call has been
// applied by its shard worker. It costs one barrier per worker, not
// per peer: a done sentinel lands behind everything already in each
// ring, so draining all the sentinels drains all prior batches.
func (f *Fleet) Sync() {
	dones := make([]chan struct{}, 0, len(f.workers))
	for _, w := range f.workers {
		done := make(chan struct{})
		if w.ring.Push(delivery{done: done}) {
			dones = append(dones, done)
		}
	}
	for _, done := range dones {
		<-done
	}
}

// Close stops the shard workers after their rings drain, then waits.
// The engines stay inspectable afterwards (unlike ClosePeer, Close does
// not release them). The sequence is refuse-then-drain: every peer is
// marked closing (new senders refuse), in-flight senders are waited
// out (their batches either landed or were refused), and only then are
// the rings closed — the workers finish whatever landed and exit, so
// nothing accepted is ever dropped. Peers created concurrently with
// Close come out dead (Enqueue reports false) rather than leaked: the
// closed flag is published before the sweep takes each stripe lock, so
// either the creator sees it or the sweep sees the map entry.
func (f *Fleet) Close() {
	if !f.closed.Swap(true) {
		if f.fuseStop != nil {
			close(f.fuseStop)
		}
		var peers []*FleetPeer
		for i := range f.stripes {
			s := &f.stripes[i]
			s.mu.Lock()
			for _, p := range s.peers {
				peers = append(peers, p)
			}
			s.mu.Unlock()
		}
		for _, p := range peers {
			p.closing.Store(true)
		}
		for _, p := range peers {
			for p.senders.Load() != 0 {
				runtime.Gosched()
			}
		}
		for _, w := range f.workers {
			w.ring.Close()
		}
	}
	f.wg.Wait()
	f.fuseWG.Wait()
}

// Status renders a one-line fleet summary.
func (f *Fleet) Status() string {
	m := f.Metrics()
	return fmt.Sprintf("peers=%d ops=%d (wd=%d ann=%d) decisions=%d rules=%d rerouting=%d paths=%d links=%d",
		m.Peers, m.Ops, m.Withdrawals, m.Announcements, m.Decisions, m.RulesInstalled, m.Rerouting,
		m.UniquePaths, m.UniqueLinks)
}

func (f *Fleet) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// delivery is one hand-off to a shard worker: an event batch for one
// peer, a synchronization point (nil batch, done channel; peer nil for
// a fleet-wide barrier), or a peer's teardown sentinel.
type delivery struct {
	peer    *FleetPeer
	batch   event.Batch
	done    chan<- struct{} // closed after the batch is applied (Sync)
	stop    bool            // peer teardown sentinel
	release bool            // with stop: release the engine's pool refs
}

// FleetPeer is one peer's engine pinned to a shard worker. Streaming
// events arrive as event.Batches applied on the worker; setup calls
// (Learn*, Provision) and inspection lock the engine directly.
//
// The delivery path is lock-free: Enqueue is an atomic in-flight count,
// one closing-flag load and a ring push — no per-session mutex on the
// demux path, so concurrent sources feeding different peers (or even
// one peer) never serialize on anything but the shard ring itself.
// Teardown refuses new senders, waits out the in-flight ones (their
// batches either landed in the ring or were refused), and then lets
// the worker drain past everything that landed.
type FleetPeer struct {
	key    PeerKey
	fleet  *Fleet
	worker *fleetWorker

	mu     sync.Mutex // guards engine (and rerouting, via the observer)
	engine *swiftengine.Engine
	// rerouting mirrors the engine's reroute state for the fleet's
	// aggregate gauge. It is only touched by the wired observer, which
	// runs under mu.
	rerouting bool

	closing atomic.Bool  // set by close(); new senders refuse
	senders atomic.Int64 // in-flight Enqueue/Sync calls

	withdrawals   atomic.Uint64
	announcements atomic.Uint64
	lastAt        atomic.Int64 // time.Duration of the newest applied event
}

// Key returns the peer's identity.
func (p *FleetPeer) Key() PeerKey { return p.key }

func (p *FleetPeer) apply(d delivery) {
	if len(d.batch) > 0 {
		var wd, ann uint64
		last := time.Duration(-1)
		for i := range d.batch {
			switch d.batch[i].Kind {
			case event.KindWithdraw:
				wd++
			case event.KindAnnounce:
				ann++
			default:
				continue
			}
			last = d.batch[i].At
		}
		p.mu.Lock()
		err := p.engine.Apply(d.batch)
		p.mu.Unlock()
		if err != nil {
			p.fleet.logf("fleet: peer %s: %v", p.key, err)
		}
		p.withdrawals.Add(wd)
		p.announcements.Add(ann)
		p.fleet.ops.Add(wd + ann)
		if last >= 0 {
			p.lastAt.Store(int64(last))
		}
	}
	if d.done != nil {
		close(d.done)
	}
}

// Enqueue hands a batch to the peer's shard worker, blocking when the
// shard ring is full (backpressure propagates to the router's TCP
// connection). It reports false after the peer (or its fleet) has
// closed; a false return means the batch was NOT delivered. The batch
// is retained until applied; callers must not reuse its backing array.
// The ops counter (withdraw/announce events, ticks excluded) advances
// as the worker applies the batch.
func (p *FleetPeer) Enqueue(b event.Batch) bool {
	p.senders.Add(1)
	defer p.senders.Add(-1)
	if p.closing.Load() {
		return false
	}
	w := p.worker
	if !w.ring.TryPush(delivery{peer: p, batch: b}) {
		w.full.Add(1)
		if !w.ring.Push(delivery{peer: p, batch: b}) {
			return false // ring closed: fleet shut down mid-push
		}
	}
	p.fleet.batches.Add(1)
	return true
}

// Sync blocks until everything enqueued to this peer before it has
// been applied. It returns immediately on a closed peer.
func (p *FleetPeer) Sync() {
	p.senders.Add(1)
	if p.closing.Load() {
		p.senders.Add(-1)
		return
	}
	done := make(chan struct{})
	if !p.worker.ring.Push(delivery{peer: p, done: done}) {
		p.senders.Add(-1)
		return
	}
	p.senders.Add(-1)
	<-done
}

// close begins teardown: refuse new senders, wait out the in-flight
// ones so every batch the session delivered is already in the ring,
// then push the stop sentinel behind them — the worker reaches it only
// after the session's last batch is applied. The push fails only when
// the fleet itself closed first; then the worker drains and exits with
// the engine left allocated, exactly Close's semantics. Idempotent.
func (p *FleetPeer) close(release bool) {
	if p.closing.Swap(true) {
		return
	}
	for p.senders.Load() != 0 {
		runtime.Gosched()
	}
	p.worker.ring.Push(delivery{peer: p, stop: true, release: release})
}

// LearnPrimary installs a table-transfer route on the peer's primary
// RIB.
func (p *FleetPeer) LearnPrimary(pfx netaddr.Prefix, path []uint32) {
	p.mu.Lock()
	p.engine.LearnPrimary(pfx, path)
	p.mu.Unlock()
}

// LearnAlternate installs a backup route offered by another neighbor.
func (p *FleetPeer) LearnAlternate(neighbor uint32, pfx netaddr.Prefix, path []uint32) {
	p.mu.Lock()
	p.engine.LearnAlternate(neighbor, pfx, path)
	p.mu.Unlock()
}

// Provisioned reports whether the engine has a compiled encoding (i.e.
// Provision has succeeded at least once).
func (p *FleetPeer) Provisioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.Scheme() != nil
}

// Provision compiles the plan and tag encoding from the loaded tables.
func (p *FleetPeer) Provision() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.Provision()
}

// Decisions snapshots the engine's decision log.
func (p *FleetPeer) Decisions() []swiftengine.Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.Decisions()
}

// RerouteActive reports whether fast-reroute rules are installed.
func (p *FleetPeer) RerouteActive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.engine.RerouteActive()
}

// LastAt returns the stream offset of the newest applied observation.
func (p *FleetPeer) LastAt() time.Duration { return time.Duration(p.lastAt.Load()) }

// Do runs fn with the engine locked — the escape hatch for inspection
// and tests. fn must not retain the engine.
func (p *FleetPeer) Do(fn func(*swiftengine.Engine)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(p.engine)
}
