package controller

import (
	"bytes"
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// snapshotTestConfig is the fleet configuration both sides of a
// snapshot round trip share: the restore path rebuilds engines through
// the same factory, so it must be a pure function of the peer key.
func snapshotTestConfig(t testing.TB, prefixes []netaddr.Prefix) FleetConfig {
	return FleetConfig{
		Engine: func(key PeerKey) swiftengine.Config {
			cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
			cfg.Inference.TriggerEvery = 2000
			cfg.Inference.UseHistory = false
			cfg.Burst.StartThreshold = 1500
			cfg.Encoding.MinPrefixes = 1000
			return cfg
		},
		OnPeer: func(p *FleetPeer) {
			for _, pfx := range prefixes {
				p.LearnPrimary(pfx, []uint32{2, 5, 6})
				p.LearnAlternate(3, pfx, []uint32{3, 6})
			}
			if err := p.Provision(); err != nil {
				t.Errorf("provision: %v", err)
			}
		},
	}
}

func snapshotBytes(t *testing.T, f *Fleet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

type peerView struct {
	fib      string
	routes   int
	reroute  bool
	decided  int
	deferred int
}

func viewOf(p *FleetPeer) peerView {
	var v peerView
	p.Do(func(e *swiftengine.Engine) {
		v = peerView{
			fib:      e.FIB().Dump(),
			routes:   e.RIB().Len(),
			reroute:  e.RerouteActive(),
			decided:  e.NumDecisions(),
			deferred: e.Deferred(),
		}
	})
	return v
}

// TestFleetSnapshotRoundTrip is the steady-state warm-restart property
// test: snapshot a provisioned, burst-experienced fleet, restore it,
// and demand (1) the snapshot itself is deterministic, (2) the restored
// fleet re-snapshots byte-identically, (3) every restored FIB dump is
// byte-identical to its live original, and (4) a fresh burst replayed
// into both fleets drives them to identical decisions and FIBs — the
// restored detector histories and thresholds behave exactly like the
// live ones.
func TestFleetSnapshotRoundTrip(t *testing.T) {
	prefixes := make([]netaddr.Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	live := NewFleet(snapshotTestConfig(t, prefixes))
	defer live.Close()

	keySteady := PeerKey{AS: 2, BGPID: 1}
	keyCycled := PeerKey{AS: 2, BGPID: 2}
	live.Peer(keySteady)

	// keyCycled works one full burst cycle: detect, infer, reroute,
	// reconverge, fall back. Its snapshot carries a non-empty burst
	// history, accumulated FIB write accounting and a fallback-compiled
	// scheme.
	cycle := fleetBurstCycle(keyCycled, prefixes)
	span := cycle[len(cycle)-1].At + time.Hour
	if !live.Peer(keyCycled).Enqueue(cycle) {
		t.Fatal("enqueue refused")
	}
	live.Sync()

	snap1 := snapshotBytes(t, live)
	snap2 := snapshotBytes(t, live)
	if !bytes.Equal(snap1, snap2) {
		t.Fatal("two snapshots of an idle fleet differ")
	}

	restored, err := RestoreFleet(bytes.NewReader(snap1), snapshotTestConfig(t, prefixes))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer restored.Close()
	if got, want := restored.Len(), live.Len(); got != want {
		t.Fatalf("restored %d peers, want %d", got, want)
	}

	resnap := snapshotBytes(t, restored)
	if !bytes.Equal(snap1, resnap) {
		t.Fatalf("restored fleet re-snapshots differently: %d vs %d bytes", len(resnap), len(snap1))
	}

	for _, key := range []PeerKey{keySteady, keyCycled} {
		lv, rv := viewOf(live.Peer(key)), viewOf(restored.Peer(key))
		if lv.fib != rv.fib {
			t.Errorf("peer %s: restored FIB dump differs from live", key)
		}
		if lv.routes != rv.routes {
			t.Errorf("peer %s: routes %d live, %d restored", key, lv.routes, rv.routes)
		}
		if lv.reroute != rv.reroute {
			t.Errorf("peer %s: reroute active %v live, %v restored", key, lv.reroute, rv.reroute)
		}
	}

	// Fresh burst cycles on both peers, replayed into both fleets. The
	// decision log is not part of the snapshot, so compare deltas.
	before := map[PeerKey][2]int{}
	for _, key := range []PeerKey{keySteady, keyCycled} {
		before[key] = [2]int{viewOf(live.Peer(key)).decided, viewOf(restored.Peer(key)).decided}
	}
	for _, key := range []PeerKey{keySteady, keyCycled} {
		replay := fleetBurstCycle(key, prefixes)
		shiftFleetBatch(replay, span)
		replayCopy := append(event.Batch(nil), replay...)
		if !live.Peer(key).Enqueue(replay) {
			t.Fatal("enqueue refused")
		}
		if !restored.Peer(key).Enqueue(replayCopy) {
			t.Fatal("enqueue refused")
		}
	}
	live.Sync()
	restored.Sync()
	for _, key := range []PeerKey{keySteady, keyCycled} {
		lv, rv := viewOf(live.Peer(key)), viewOf(restored.Peer(key))
		ld, rd := lv.decided-before[key][0], rv.decided-before[key][1]
		if ld != rd {
			t.Errorf("peer %s: replay made %d decisions live, %d restored", key, ld, rd)
		}
		if ld == 0 {
			t.Errorf("peer %s: replay burst made no decisions; the workload is vacuous", key)
		}
		if lv.fib != rv.fib {
			t.Errorf("peer %s: FIB dumps diverged after replay", key)
		}
		if lv.reroute != rv.reroute {
			t.Errorf("peer %s: reroute state diverged after replay: %v vs %v", key, lv.reroute, rv.reroute)
		}
	}
}

// TestFleetSnapshotMidBurst pins the mid-burst restore contract: a
// fleet checkpointed with a burst open and reroute rules installed
// restores with the identical FIB (protection stays up across the
// restart), and replaying the burst's tail — reconvergence and the
// closing tick — drives live and restored to the same final state. The
// inference tracker's in-flight evidence is deliberately not captured,
// so the equivalence here is exactly the documented degradation: no
// *new* trigger fires from pre-snapshot evidence, everything else
// matches.
func TestFleetSnapshotMidBurst(t *testing.T) {
	prefixes := make([]netaddr.Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	live := NewFleet(snapshotTestConfig(t, prefixes))
	defer live.Close()

	key := PeerKey{AS: 2, BGPID: 7}
	cycle := fleetBurstCycle(key, prefixes)
	const wd = 3000 // fleetBurstCycle's withdrawal prologue
	head := append(event.Batch(nil), cycle[:wd]...)
	tail := cycle[wd:]
	if !live.Peer(key).Enqueue(head) {
		t.Fatal("enqueue refused")
	}
	live.Sync()
	lv := viewOf(live.Peer(key))
	if !lv.reroute || lv.decided == 0 {
		t.Fatalf("withdrawal prologue did not trigger a reroute (decisions=%d, active=%v)", lv.decided, lv.reroute)
	}

	snap := snapshotBytes(t, live)
	restored, err := RestoreFleet(bytes.NewReader(snap), snapshotTestConfig(t, prefixes))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer restored.Close()

	rv := viewOf(restored.Peer(key))
	if rv.fib != lv.fib {
		t.Fatal("mid-burst restored FIB dump differs from live: reroute protection dropped")
	}
	if !rv.reroute {
		t.Fatal("mid-burst restore lost the reroute-active flag")
	}

	tailCopy := append(event.Batch(nil), tail...)
	if !live.Peer(key).Enqueue(tail) {
		t.Fatal("enqueue refused")
	}
	if !restored.Peer(key).Enqueue(tailCopy) {
		t.Fatal("enqueue refused")
	}
	live.Sync()
	restored.Sync()
	lv2, rv2 := viewOf(live.Peer(key)), viewOf(restored.Peer(key))
	if lv2.fib != rv2.fib {
		t.Error("FIB dumps diverged after replaying the burst tail")
	}
	if lv2.reroute || rv2.reroute {
		t.Errorf("burst tail should have fallen back on both sides (live=%v restored=%v)", lv2.reroute, rv2.reroute)
	}
	if ld, rd := lv2.decided-lv.decided, rv2.decided-rv.decided; ld != rd {
		t.Errorf("burst tail made %d decisions live, %d restored", ld, rd)
	}
}

// TestFleetSnapshotRefusals pins the error surface: snapshotting a
// closed fleet refuses, restoring garbage refuses, and a truncated
// snapshot fails the checksum rather than restoring a partial fleet.
func TestFleetSnapshotRefusals(t *testing.T) {
	prefixes := make([]netaddr.Prefix, 64)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	f := NewFleet(snapshotTestConfig(t, prefixes))
	f.Peer(PeerKey{AS: 2, BGPID: 1})
	snap := snapshotBytes(t, f)
	f.Close()
	if err := f.Snapshot(&bytes.Buffer{}); err == nil {
		t.Error("snapshot of a closed fleet succeeded")
	}
	if _, err := RestoreFleet(bytes.NewReader(snap[:len(snap)-3]), snapshotTestConfig(t, prefixes)); err == nil {
		t.Error("restore of a truncated snapshot succeeded")
	}
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := RestoreFleet(bytes.NewReader(corrupt), snapshotTestConfig(t, prefixes)); err == nil {
		t.Error("restore of a corrupted snapshot succeeded")
	}
	if _, err := RestoreFleet(bytes.NewReader([]byte("not a snapshot")), snapshotTestConfig(t, prefixes)); err == nil {
		t.Error("restore of garbage succeeded")
	}
}
