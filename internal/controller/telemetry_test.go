package controller

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/telemetry"
)

// TestFleetTelemetryUnderChurn drives an instrumented fleet with
// concurrent Apply traffic, peer teardown and registry scrapes — the
// full wiring a live swiftd runs — and checks the scrape stays
// coherent throughout. Run with -race: the scrape path walks the same
// peers the churner is closing.
func TestFleetTelemetryUnderChurn(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewBurstRing(32)
	ft := NewFleetTelemetry(reg, ring)
	f := NewFleet(ft.Instrument(FleetConfig{
		Engine: func(key PeerKey) swiftengine.Config {
			return swiftengine.Config{LocalAS: 1, PrimaryNeighbor: key.AS}
		},
	}))
	RegisterFleetMetrics(reg, f)

	const (
		feeders = 4
		keys    = 8
		rounds  = 300
	)
	key := func(i int) PeerKey { return PeerKey{AS: uint32(2 + i%keys), BGPID: uint32(i % keys)} }

	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := []uint32{uint32(2 + g), 50, 60}
			for i := 0; i < rounds; i++ {
				k := key(g + i)
				b := event.Batch{
					event.Announce(time.Duration(i)*time.Millisecond, netaddr.PrefixFor(8, i%64), path).WithPeer(k),
					event.Withdraw(time.Duration(i)*time.Millisecond+time.Microsecond, netaddr.PrefixFor(8, i%64)).WithPeer(k),
				}
				if err := f.Apply(b); err != nil {
					t.Errorf("Apply: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			f.ClosePeer(key(i))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf strings.Builder
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	f.Sync()

	// Steady state: the scrape totals must agree with the fleet's own
	// push-fed accounting, and every wired family must be present.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{
		"swift_peer_withdrawals_total",
		"swift_peer_announcements_total",
		"swift_fleet_batches_total",
		"swift_fleet_events_total",
		"swift_fleet_peers",
		"swift_pool_paths",
		"swift_pool_shard_paths_max",
		"swift_fib_rules",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from exposition", fam)
		}
	}

	m := f.Metrics()
	wantEvents := uint64(feeders * rounds * 2)
	if m.Ops != wantEvents {
		t.Errorf("fleet ops = %d, want %d", m.Ops, wantEvents)
	}
	// The per-peer counter families are cumulative across peer
	// incarnations (a closed peer's series survives; its replacement
	// adds to the same label), so their totals match the fleet's
	// lifetime event count exactly.
	var wd, ann uint64
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "swift_peer_withdrawals_total{"):
			wd += parseSampleValue(t, line)
		case strings.HasPrefix(line, "swift_peer_announcements_total{"):
			ann += parseSampleValue(t, line)
		}
	}
	if wd+ann != wantEvents {
		t.Errorf("scraped per-peer totals wd=%d ann=%d, want sum %d", wd, ann, wantEvents)
	}
	if wd != ann {
		t.Errorf("wd=%d ann=%d, want equal (one of each per batch)", wd, ann)
	}
}

// parseSampleValue extracts the integer after the last space of one
// exposition line.
func parseSampleValue(t *testing.T, line string) uint64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	n, err := strconv.ParseUint(line[i+1:], 10, 64)
	if err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	return n
}

// TestEngineMetricsEndToEnd runs a real burst through an instrumented
// fleet peer and checks the counters, histograms and trace ring all
// observe it.
func TestEngineMetricsEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewBurstRing(8)
	ft := NewFleetTelemetry(reg, ring)
	f := NewFleet(ft.Instrument(FleetConfig{
		Engine: func(key PeerKey) swiftengine.Config {
			cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: key.AS}
			cfg.Inference.TriggerEvery = 50
			cfg.Inference.UseHistory = false
			cfg.Burst.StartThreshold = 40
			cfg.Encoding.MinPrefixes = 1
			return cfg
		},
	}))
	RegisterFleetMetrics(reg, f)
	defer f.Close()

	k := PeerKey{AS: 2, BGPID: 1}
	p := f.Peer(k)
	const n = 100
	for i := 0; i < n; i++ {
		p.LearnPrimary(netaddr.PrefixFor(8, i), []uint32{2, 5, 6})
		p.LearnAlternate(3, netaddr.PrefixFor(8, i), []uint32{3, 6})
	}
	if err := p.Provision(); err != nil {
		t.Fatal(err)
	}

	b := make(event.Batch, 0, n+1)
	for i := 0; i < n; i++ {
		b = append(b, event.Withdraw(time.Duration(i)*time.Millisecond, netaddr.PrefixFor(8, i)).WithPeer(k))
	}
	b = append(b, event.Tick(time.Hour).WithPeer(k)) // close the burst
	if err := f.Apply(b); err != nil {
		t.Fatal(err)
	}
	p.Sync()

	m := ft.EngineMetrics(k)
	if m.Withdrawals.Value() != n {
		t.Errorf("withdrawals = %d, want %d", m.Withdrawals.Value(), n)
	}
	if m.BurstsStarted.Value() != 1 || m.BurstsEnded.Value() != 1 {
		t.Errorf("bursts started=%d ended=%d, want 1/1",
			m.BurstsStarted.Value(), m.BurstsEnded.Value())
	}
	if m.Decisions.Value() == 0 {
		t.Error("no decisions counted")
	}
	if m.InferLatency.Count() == 0 {
		t.Error("no inference latency observed")
	}
	if m.BurstDuration.Count() != 1 {
		t.Errorf("burst duration count = %d, want 1", m.BurstDuration.Count())
	}
	// Fallback re-provision after burst end.
	if m.Provisions.Value() == 0 {
		t.Error("no provisions counted")
	}

	recs := ring.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("trace ring holds %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Peer != k.String() || rec.Open || len(rec.Decisions) == 0 {
		t.Errorf("trace record = %+v", rec)
	}
	if rec.Provision == nil {
		t.Error("trace record missing fallback provision")
	}

	sts := f.PeerStatuses()
	if len(sts) != 1 || sts[0].Withdrawals != n || !sts[0].Provisioned {
		t.Errorf("peer statuses = %+v", sts)
	}
}
