package controller

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/fusion"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// fusedFleetConfig is the shared engine shape for the fusion tests and
// benchmark: thresholds sized so fleetBurstCycle triggers a real
// inference on every peer, all peers feeding one evidence aggregator.
func fusedFleetConfig(prefixes []netaddr.Prefix, fail func(error)) FleetConfig {
	return FleetConfig{
		Fusion: &fusion.Config{},
		Engine: func(key PeerKey) swiftengine.Config {
			cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
			cfg.Inference.TriggerEvery = 2000
			cfg.Inference.UseHistory = false
			cfg.Burst.StartThreshold = 1500
			cfg.Encoding.MinPrefixes = 1000
			return cfg
		},
		OnPeer: func(p *FleetPeer) {
			for _, pfx := range prefixes {
				p.LearnPrimary(pfx, []uint32{2, 5, 6})
				p.LearnAlternate(3, pfx, []uint32{3, 6})
			}
			if err := p.Provision(); err != nil {
				fail(err)
			}
		},
		QueueDepth: 32,
	}
}

// TestFleetFusionChurnUnderLoad is the fused counterpart of
// TestFleetPeerChurnUnderLoad, run with -race: feeder goroutines drive
// full burst cycles (inference, Propose, verdict publication through
// the background pump) while a churner connects and tears down peers
// and another goroutine forces verdict fan-out with explicit FusePump
// calls. Aggregator evidence, epoch-gated ApplyExternal under the peer
// locks and async teardown must not race; afterwards every peer closes
// and the shared pool drains, with peers the churner killed mid-burst
// having retracted their evidence from the aggregator.
func TestFleetFusionChurnUnderLoad(t *testing.T) {
	prefixes := make([]netaddr.Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	var failOnce sync.Once
	var provisionErr error
	f := NewFleet(fusedFleetConfig(prefixes, func(err error) {
		failOnce.Do(func() { provisionErr = err })
	}))
	if provisionErr != nil {
		t.Fatal(provisionErr)
	}

	const (
		feeders = 4
		rounds  = 30
	)
	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := PeerKey{AS: 2, BGPID: uint32(g + 1)}
			cycle := fleetBurstCycle(key, prefixes)
			span := cycle[len(cycle)-1].At + time.Hour
			for i := 0; i < rounds; i++ {
				p := f.Peer(key)
				const chunk = 512
				for lo := 0; lo < len(cycle); lo += chunk {
					hi := lo + chunk
					if hi > len(cycle) {
						hi = len(cycle)
					}
					// A false return means the churner tore the peer down
					// mid-burst — the documented contract, not an error.
					if !p.Enqueue(cycle[lo:hi:hi]) {
						break
					}
				}
				p.Sync()
				shiftFleetBatch(cycle, span)
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*feeders; i++ {
			f.ClosePeer(PeerKey{AS: 2, BGPID: uint32(i%feeders + 1)})
			runtime.Gosched()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*feeders; i++ {
			f.FusePump(0)
			runtime.Gosched()
		}
	}()
	wg.Wait()

	if f.Fusion() == nil {
		t.Fatal("fused fleet has no aggregator")
	}
	st := f.Fusion().Stats()
	if st.EvidenceEvents == 0 {
		t.Error("no evidence reached the aggregator under churn")
	}

	for _, p := range f.Peers() {
		f.ClosePeer(p.Key())
	}
	f.Close()
	if n := f.Pool().Len(); n != 0 {
		t.Fatalf("shared pool leaks %d paths after fused churn teardown", n)
	}
	if st := f.Fusion().Stats(); st.Peers != 0 {
		t.Fatalf("aggregator still tracks %d peers after full teardown", st.Peers)
	}
}

// TestFleetFusionVerdictFanOut pins the happy path end to end: two
// peers bursting on the same failed links corroborate k-of-n, the pump
// publishes a verdict, and a third quiet (but provisioned) peer
// receives it as an external pre-trigger.
func TestFleetFusionVerdictFanOut(t *testing.T) {
	prefixes := make([]netaddr.Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	f := NewFleet(fusedFleetConfig(prefixes, func(err error) { t.Fatal(err) }))
	defer f.Close()

	quiet := f.Peer(PeerKey{AS: 2, BGPID: 99})
	for _, id := range []uint32{1, 2} {
		key := PeerKey{AS: 2, BGPID: id}
		p := f.Peer(key)
		// Withdrawals only: hold the burst open so the evidence stays live.
		var batch event.Batch
		for i, pfx := range prefixes {
			batch = append(batch, event.Withdraw(time.Duration(i)*time.Millisecond, pfx).WithPeer(key))
		}
		if !p.Enqueue(batch) {
			t.Fatal("enqueue refused")
		}
		p.Sync()
	}
	f.FusePump(0)

	v, ok := f.Fusion().Snapshot(0)
	if !ok || len(v.Links) == 0 {
		t.Fatalf("no fused verdict after two corroborating bursts (ok=%v)", ok)
	}
	if v.Supporters < 2 {
		t.Errorf("verdict supporters = %d, want >= 2", v.Supporters)
	}
	ext := false
	quiet.Do(func(e *swiftengine.Engine) { ext = e.ExternalActive() })
	if !ext {
		t.Error("quiet peer did not receive the external verdict")
	}
}

// BenchmarkFleetApplyFused is BenchmarkFleetApplyParallel with every
// engine sharing one evidence aggregator: the same full burst cycles,
// plus Propose on each decision, burst lifecycle upcalls and background
// verdict publication. The spread against the plain benchmark bounds
// the fusion overhead on the hot path as engines scale 1→8.
func BenchmarkFleetApplyFused(b *testing.B) {
	prefixes := make([]netaddr.Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	for _, engines := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("engines=%d", engines), func(b *testing.B) {
			f := NewFleet(fusedFleetConfig(prefixes, func(err error) { b.Fatal(err) }))
			defer f.Close()

			const chunk = 512
			peers := make([]*FleetPeer, engines)
			chunks := make([][]event.Batch, engines)
			var span time.Duration
			for i := 0; i < engines; i++ {
				key := PeerKey{AS: 2, BGPID: uint32(i + 1)}
				peers[i] = f.Peer(key)
				cycle := fleetBurstCycle(key, prefixes)
				span = cycle[len(cycle)-1].At + time.Hour
				for lo := 0; lo < len(cycle); lo += chunk {
					hi := lo + chunk
					if hi > len(cycle) {
						hi = len(cycle)
					}
					chunks[i] = append(chunks[i], cycle[lo:hi:hi])
				}
			}
			events := 0
			for _, c := range chunks[0] {
				events += len(c)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				var wg sync.WaitGroup
				for i := 0; i < engines; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						for _, c := range chunks[i] {
							if !peers[i].Enqueue(c) {
								b.Error("enqueue refused")
								return
							}
						}
						peers[i].Sync()
					}(i)
				}
				wg.Wait()
				b.StopTimer()
				for i := 0; i < engines; i++ {
					for _, c := range chunks[i] {
						shiftFleetBatch(c, span)
					}
				}
				b.StartTimer()
			}
			b.StopTimer()
			total := int64(b.N) * int64(events) * int64(engines)
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
