package controller

import (
	"net"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/bgpd"
	"swift/internal/bgpsim"
	"swift/internal/inference"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
	"swift/internal/topology"
)

// livePair returns two established sessions over an in-memory pipe.
func livePair(t *testing.T) (*bgpd.Session, *bgpd.Session) {
	t.Helper()
	c1, c2 := net.Pipe()
	type res struct {
		s   *bgpd.Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := bgpd.Establish(c1, bgpd.Config{LocalAS: 1, RouterID: 1})
		ch <- res{s, err}
	}()
	peer, err := bgpd.Establish(c2, bgpd.Config{LocalAS: 2, RouterID: 2})
	if err != nil {
		t.Fatal(err)
	}
	local := <-ch
	if local.err != nil {
		t.Fatal(local.err)
	}
	t.Cleanup(func() {
		local.s.Close()
		peer.Close()
	})
	return local.s, peer
}

// TestLiveBurstReroute drives the full §7 pipeline over a real BGP
// session: the peer replays the Fig. 1 burst as wire UPDATEs, the
// controller's engine detects it, infers (5,6), and programs the data
// plane while the burst is still arriving.
func TestLiveBurstReroute(t *testing.T) {
	scale := 1000
	netw := bgpsim.Fig1Network(scale)
	sols := netw.Solve(netw.Graph)

	cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference = inference.Default()
	cfg.Inference.TriggerEvery = 250
	cfg.Inference.UseHistory = false
	cfg.Encoding.MinPrefixes = 100
	cfg.Burst.StartThreshold = 100
	engine := swiftengine.New(cfg)
	// The controller's session goroutine can outlive the test body by a
	// beat; logging must not touch testing.T after completion.
	ctrl := New(engine, nil)

	// Table transfer: primary from AS 2, alternates from AS 3 and 4.
	for origin := range netw.Origins {
		for _, nb := range []uint32{2, 3, 4} {
			r, ok := sols[origin].ExportTo(netw.Graph, netw.Policy, nb, 1)
			if !ok {
				continue
			}
			var updates []*bgp.Update
			u := &bgp.Update{Attrs: bgp.Attrs{ASPath: r.Path, HasNextHop: true, NextHop: nb}}
			for i := 0; i < netw.Origins[origin]; i++ {
				u.NLRI = append(u.NLRI, netaddr.PrefixFor(origin, i))
			}
			updates = append(updates, u)
			if nb == 2 {
				ctrl.LoadTable(updates)
			} else {
				ctrl.LoadAlternate(nb, updates)
			}
		}
	}
	if err := ctrl.Provision(); err != nil {
		t.Fatal(err)
	}

	local, peer := livePair(t)
	ctrl.AttachPrimary(local)

	// Pre-failure forwarding sanity.
	if nh, ok := ctrl.ForwardPrefix(netaddr.PrefixFor(8, 0)); !ok || nh != 2 {
		t.Fatalf("pre-failure forward = %d %v", nh, ok)
	}

	// Replay the burst on the wire (squashed in time: the controller
	// uses arrival wall-clock, and we only need ordering).
	b, err := netw.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(3))
	if err != nil {
		t.Fatal(err)
	}
	var wd []netaddr.Prefix
	sent := 0
	flushWd := func() {
		if len(wd) == 0 {
			return
		}
		for _, m := range bgp.PackWithdrawals(wd) {
			if err := peer.Send(m); err != nil {
				t.Errorf("send: %v", err)
			}
		}
		wd = wd[:0]
	}
	for _, ev := range b.Events {
		if ev.Kind == bgpsim.KindWithdraw {
			wd = append(wd, ev.Prefix)
			if len(wd) >= 400 {
				flushWd()
			}
		} else {
			flushWd()
			u := &bgp.Update{
				Attrs: bgp.Attrs{ASPath: ev.Path, HasNextHop: true, NextHop: 2},
				NLRI:  []netaddr.Prefix{ev.Prefix},
			}
			if err := peer.Send(u); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
		sent++
	}
	flushWd()

	// Wait until the controller has drained the stream and decided.
	deadline := time.After(15 * time.Second)
	for {
		if ds := ctrl.Decisions(); len(ds) > 0 && ctrl.OnLink(topology.MakeLink(5, 6)) == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("controller did not converge: %s", ctrl.Status())
		case <-time.After(50 * time.Millisecond):
		}
	}

	ds := ctrl.Decisions()
	last := ds[len(ds)-1]
	found := false
	for _, l := range last.Result.Links {
		if l == topology.MakeLink(5, 6) {
			found = true
		}
	}
	if !found {
		t.Errorf("final live inference = %v, want (5,6)", last.Result.Links)
	}
	if ctrl.Status() == "" {
		t.Error("empty status")
	}
}

func TestTickClosesQuietBurst(t *testing.T) {
	cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Burst.StartThreshold = 10
	engine := swiftengine.New(cfg)
	ctrl := New(engine, nil)
	if err := ctrl.Provision(); err != nil {
		t.Fatal(err)
	}
	ctrl.Tick() // must not panic on an idle controller
}
