package controller

import (
	"time"

	"swift/internal/fusion"
)

// Fusion returns the fleet's evidence aggregator (nil when fusion is
// disabled) — the inspection surface for the ops plane and tests.
func (f *Fleet) Fusion() *fusion.Aggregator { return f.fusion }

// kickFusePump nudges the background verdict pump (non-blocking; a
// pending kick coalesces with new ones). No-op under ManualPump.
func (f *Fleet) kickFusePump() {
	if f.fuseKick == nil {
		return
	}
	select {
	case f.fuseKick <- struct{}{}:
	default:
	}
}

// fusePumpLoop is the background verdict publisher: evidence changes
// kick it, it snapshots the aggregator's verdict and fans it out. The
// loop holds no locks while snapshotting and takes exactly one peer
// lock at a time while applying — the lock-order contract that lets
// engines call Propose under their own peer lock without deadlock.
func (f *Fleet) fusePumpLoop() {
	defer f.fuseWG.Done()
	for {
		select {
		case <-f.fuseStop:
			return
		case <-f.fuseKick:
			f.FusePump(0)
		}
	}
}

// FusePump publishes the current fused verdict to every peer: engines
// receive confirmed failed-link sets via ApplyExternal (pre-triggering
// their reroute) or, when the verdict emptied, retire external state
// via ClearExternal. now is the stream clock used for evidence decay; 0
// means the newest evidence time. Verdict application is epoch-gated in
// the engine, so repeated pumps of an unchanged verdict are no-ops.
//
// The background pump calls this on evidence changes; harnesses running
// under ManualPump (the scenario engine) call it at their own
// synchronization barriers for deterministic fan-out.
func (f *Fleet) FusePump(now time.Duration) {
	if f.fusion == nil {
		return
	}
	v, ok := f.fusion.Snapshot(now)
	for _, p := range f.Peers() {
		p.mu.Lock()
		if ok {
			p.engine.ApplyExternal(v)
		} else if err := p.engine.ClearExternal(now); err != nil {
			f.logf("fleet: peer %s: clear external: %v", p.key, err)
		}
		p.mu.Unlock()
	}
}
