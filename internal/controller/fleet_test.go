package controller

import (
	"sync"
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

func testFleet() *Fleet {
	return NewFleet(FleetConfig{
		Engine: func(key PeerKey) swiftengine.Config {
			return swiftengine.Config{LocalAS: 1, PrimaryNeighbor: key.AS}
		},
	})
}

// TestFleetPeerIdentity checks get-or-create semantics across stripes
// under concurrent access: one engine per key, ever.
func TestFleetPeerIdentity(t *testing.T) {
	f := testFleet()
	defer f.Close()

	keys := make([]PeerKey, 64)
	for i := range keys {
		keys[i] = PeerKey{AS: uint32(i%8 + 2), BGPID: uint32(i)}
	}
	got := make([]*FleetPeer, len(keys)*8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, k := range keys {
				got[g*len(keys)+i] = f.Peer(k)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range keys {
			if got[g*len(keys)+i] != got[i] {
				t.Fatalf("goroutine %d saw a different peer for %v", g, keys[i])
			}
		}
	}
	if f.Len() != len(keys) {
		t.Fatalf("fleet has %d peers, want %d", f.Len(), len(keys))
	}
	if len(f.Peers()) != len(keys) {
		t.Fatalf("Peers() returned %d, want %d", len(f.Peers()), len(keys))
	}
	if _, ok := f.Lookup(PeerKey{AS: 9999, BGPID: 1}); ok {
		t.Fatal("Lookup invented a peer")
	}
}

// TestFleetBatchDelivery drives observations through the per-peer
// goroutine and checks they land in the engine's RIB in order.
func TestFleetBatchDelivery(t *testing.T) {
	f := testFleet()
	defer f.Close()

	key := PeerKey{AS: 2, BGPID: 1}
	p := f.Peer(key)
	pfx := netaddr.MustParsePrefix("10.0.0.0/24")
	p.LearnPrimary(pfx, []uint32{2, 5, 7})
	if p.Provisioned() {
		t.Fatal("provisioned before Provision")
	}
	if err := p.Provision(); err != nil {
		t.Fatal(err)
	}
	if !p.Provisioned() {
		t.Fatal("not provisioned after Provision")
	}

	if !p.Enqueue(event.Batch{event.Announce(time.Second, pfx, []uint32{2, 6, 7})}) {
		t.Fatal("Enqueue refused on a live fleet")
	}
	p.Sync()
	p.Do(func(e *swiftengine.Engine) {
		if path := e.RIB().Path(pfx); len(path) == 0 || path[1] != 6 {
			t.Errorf("RIB path after announce = %v, want via 6", path)
		}
	})
	if !p.Enqueue(event.Batch{event.Withdraw(2*time.Second, pfx)}) {
		t.Fatal("Enqueue refused")
	}
	p.Sync()
	p.Do(func(e *swiftengine.Engine) {
		if path := e.RIB().Path(pfx); path != nil {
			t.Errorf("RIB path after withdraw = %v, want gone", path)
		}
	})
	if p.LastAt() != 2*time.Second {
		t.Errorf("LastAt = %v, want 2s", p.LastAt())
	}

	m := f.Metrics()
	if m.Peers != 1 || m.Ops != 2 || m.Withdrawals != 1 || m.Announcements != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if len(f.Decisions()) != 0 {
		t.Errorf("unexpected decisions: %v", f.Decisions())
	}
}

// TestFleetCloseSemantics: Close drains queues, stops goroutines, and
// later Enqueues report failure instead of panicking; engines remain
// inspectable.
func TestFleetCloseSemantics(t *testing.T) {
	f := testFleet()
	key := PeerKey{AS: 3, BGPID: 9}
	p := f.Peer(key)
	pfx := netaddr.MustParsePrefix("10.1.0.0/24")
	for i := 0; i < 100; i++ {
		if !p.Enqueue(event.Batch{event.Announce(time.Duration(i), pfx, []uint32{3, 7})}) {
			t.Fatal("Enqueue refused before Close")
		}
	}
	f.Close()
	f.Close() // idempotent
	if p.Enqueue(event.Batch{event.Withdraw(0, pfx)}) {
		t.Fatal("Enqueue accepted after Close")
	}
	if err := f.Apply(event.Batch{event.Withdraw(0, pfx)}); err != ErrClosed {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
	if got := f.Metrics().Announcements; got != 100 {
		t.Errorf("announcements = %d, want 100 (queue must drain before close)", got)
	}
	p.Do(func(e *swiftengine.Engine) {
		if e.RIB().Len() != 1 {
			t.Errorf("engine RIB len = %d, want 1", e.RIB().Len())
		}
	})
}
