package controller

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

func testFleet() *Fleet {
	return NewFleet(FleetConfig{
		Engine: func(key PeerKey) swiftengine.Config {
			return swiftengine.Config{LocalAS: 1, PrimaryNeighbor: key.AS}
		},
	})
}

// TestFleetPeerIdentity checks get-or-create semantics across stripes
// under concurrent access: one engine per key, ever.
func TestFleetPeerIdentity(t *testing.T) {
	f := testFleet()
	defer f.Close()

	keys := make([]PeerKey, 64)
	for i := range keys {
		keys[i] = PeerKey{AS: uint32(i%8 + 2), BGPID: uint32(i)}
	}
	got := make([]*FleetPeer, len(keys)*8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, k := range keys {
				got[g*len(keys)+i] = f.Peer(k)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range keys {
			if got[g*len(keys)+i] != got[i] {
				t.Fatalf("goroutine %d saw a different peer for %v", g, keys[i])
			}
		}
	}
	if f.Len() != len(keys) {
		t.Fatalf("fleet has %d peers, want %d", f.Len(), len(keys))
	}
	if len(f.Peers()) != len(keys) {
		t.Fatalf("Peers() returned %d, want %d", len(f.Peers()), len(keys))
	}
	if _, ok := f.Lookup(PeerKey{AS: 9999, BGPID: 1}); ok {
		t.Fatal("Lookup invented a peer")
	}
}

// TestFleetBatchDelivery drives observations through the per-peer
// goroutine and checks they land in the engine's RIB in order.
func TestFleetBatchDelivery(t *testing.T) {
	f := testFleet()
	defer f.Close()

	key := PeerKey{AS: 2, BGPID: 1}
	p := f.Peer(key)
	pfx := netaddr.MustParsePrefix("10.0.0.0/24")
	p.LearnPrimary(pfx, []uint32{2, 5, 7})
	if p.Provisioned() {
		t.Fatal("provisioned before Provision")
	}
	if err := p.Provision(); err != nil {
		t.Fatal(err)
	}
	if !p.Provisioned() {
		t.Fatal("not provisioned after Provision")
	}

	if !p.Enqueue(event.Batch{event.Announce(time.Second, pfx, []uint32{2, 6, 7})}) {
		t.Fatal("Enqueue refused on a live fleet")
	}
	p.Sync()
	p.Do(func(e *swiftengine.Engine) {
		if path := e.RIB().Path(pfx); len(path) == 0 || path[1] != 6 {
			t.Errorf("RIB path after announce = %v, want via 6", path)
		}
	})
	if !p.Enqueue(event.Batch{event.Withdraw(2*time.Second, pfx)}) {
		t.Fatal("Enqueue refused")
	}
	p.Sync()
	p.Do(func(e *swiftengine.Engine) {
		if path := e.RIB().Path(pfx); path != nil {
			t.Errorf("RIB path after withdraw = %v, want gone", path)
		}
	})
	if p.LastAt() != 2*time.Second {
		t.Errorf("LastAt = %v, want 2s", p.LastAt())
	}

	m := f.Metrics()
	if m.Peers != 1 || m.Ops != 2 || m.Withdrawals != 1 || m.Announcements != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if len(f.Decisions()) != 0 {
		t.Errorf("unexpected decisions: %v", f.Decisions())
	}
}

// TestFleetCloseSemantics: Close drains queues, stops goroutines, and
// later Enqueues report failure instead of panicking; engines remain
// inspectable.
func TestFleetCloseSemantics(t *testing.T) {
	f := testFleet()
	key := PeerKey{AS: 3, BGPID: 9}
	p := f.Peer(key)
	pfx := netaddr.MustParsePrefix("10.1.0.0/24")
	for i := 0; i < 100; i++ {
		if !p.Enqueue(event.Batch{event.Announce(time.Duration(i), pfx, []uint32{3, 7})}) {
			t.Fatal("Enqueue refused before Close")
		}
	}
	f.Close()
	f.Close() // idempotent
	if p.Enqueue(event.Batch{event.Withdraw(0, pfx)}) {
		t.Fatal("Enqueue accepted after Close")
	}
	if err := f.Apply(event.Batch{event.Withdraw(0, pfx)}); err != ErrClosed {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
	if got := f.Metrics().Announcements; got != 100 {
		t.Errorf("announcements = %d, want 100 (queue must drain before close)", got)
	}
	p.Do(func(e *swiftengine.Engine) {
		if e.RIB().Len() != 1 {
			t.Errorf("engine RIB len = %d, want 1", e.RIB().Len())
		}
	})
}

// TestFleetPeerChurnUnderLoad hammers the teardown path: feeder
// goroutines stream batches at a small key space while a churner
// connects and disconnects those same peers. The lock-free
// Enqueue/close handshake must neither lose a session's goroutine, nor
// deliver to a dead engine, nor leak pool references — after the dust
// settles and every peer is closed, the shared pool drains to empty.
// Run with -race: this is the close-vs-send regression test.
func TestFleetPeerChurnUnderLoad(t *testing.T) {
	f := testFleet()

	const (
		feeders = 4
		keys    = 8
		rounds  = 400
	)
	key := func(i int) PeerKey { return PeerKey{AS: uint32(2 + i%keys), BGPID: uint32(i % keys)} }

	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := []uint32{uint32(2 + g), 50, 60}
			for i := 0; i < rounds; i++ {
				k := key(g + i)
				b := event.Batch{
					event.Announce(time.Duration(i)*time.Millisecond, netaddr.PrefixFor(8, i%64), path).WithPeer(k),
					event.Withdraw(time.Duration(i)*time.Millisecond+time.Microsecond, netaddr.PrefixFor(8, i%64)).WithPeer(k),
				}
				if err := f.Apply(b); err != nil {
					t.Errorf("Apply: %v", err)
					return
				}
				// Direct peer enqueue races the churner too; a false
				// return (peer torn down mid-flight) is the documented
				// contract, not an error.
				p := f.Peer(key(g + i + 1))
				p.Enqueue(event.Batch{event.Tick(time.Duration(i) * time.Millisecond).WithPeer(p.Key())})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			f.ClosePeer(key(i))
			if i%16 == 0 {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()

	// Tear every surviving peer down; the shared pool must drain (the
	// engines' tables and tracker pins all release).
	for _, p := range f.Peers() {
		f.ClosePeer(p.Key())
	}
	f.Close()
	if n := f.Pool().Len(); n != 0 {
		t.Fatalf("shared pool leaks %d paths after full churn teardown", n)
	}
}

// TestFleetClosePeerReleasesEngine pins the teardown contract: a closed
// peer's engine returns its RIB references to the shared pool, and
// later traffic for the key builds a fresh session.
func TestFleetClosePeerReleasesEngine(t *testing.T) {
	f := testFleet()
	defer f.Close()

	k := PeerKey{AS: 2, BGPID: 7}
	p := f.Peer(k)
	p.LearnPrimary(netaddr.PrefixFor(8, 1), []uint32{2, 5, 6})
	p.LearnAlternate(3, netaddr.PrefixFor(8, 1), []uint32{3, 6})
	if n := f.Pool().Len(); n != 2 {
		t.Fatalf("pool = %d, want 2", n)
	}
	if !f.ClosePeer(k) {
		t.Fatal("ClosePeer found no peer")
	}
	if f.ClosePeer(k) {
		t.Fatal("double ClosePeer claimed a peer")
	}
	// Teardown is async on the delivery goroutine; closing the fleet's
	// remaining work isn't needed — poll briefly for the drain.
	deadline := time.Now().Add(5 * time.Second)
	for f.Pool().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool still holds %d paths after ClosePeer", f.Pool().Len())
		}
		runtime.Gosched()
	}
	// Fresh traffic re-creates the session.
	p2 := f.Peer(k)
	if p2 == p {
		t.Fatal("ClosePeer left the dead peer resolvable")
	}
	if !p2.Enqueue(event.Batch{event.Tick(time.Second).WithPeer(k)}) {
		t.Fatal("fresh peer refused delivery")
	}
}
