package controller

import (
	"sync"
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// TestFleetApplyDemux routes a mixed-peer batch through the Sink
// surface and checks each peer got exactly its own events, in order.
func TestFleetApplyDemux(t *testing.T) {
	f := testFleet()
	defer f.Close()

	k1 := PeerKey{AS: 2, BGPID: 1}
	k2 := PeerKey{AS: 3, BGPID: 1}
	p1 := netaddr.MustParsePrefix("10.0.0.0/24")
	p2 := netaddr.MustParsePrefix("10.0.1.0/24")
	b := event.Batch{
		event.Announce(time.Second, p1, []uint32{2, 5}).WithPeer(k1),
		event.Announce(time.Second, p2, []uint32{3, 5}).WithPeer(k2),
		event.Withdraw(2*time.Second, p1).WithPeer(k1),
	}
	if err := f.Apply(b); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	if f.Len() != 2 {
		t.Fatalf("fleet has %d peers, want 2", f.Len())
	}
	h1, _ := f.Lookup(k1)
	h1.Do(func(e *swiftengine.Engine) {
		if e.RIB().Path(p1) != nil {
			t.Error("peer 1: withdraw did not follow announce")
		}
	})
	h2, _ := f.Lookup(k2)
	h2.Do(func(e *swiftengine.Engine) {
		if e.RIB().Path(p2) == nil {
			t.Error("peer 2: announce missing")
		}
		if e.RIB().Path(p1) != nil {
			t.Error("peer 2: received peer 1's event")
		}
	})
	m := f.Metrics()
	if m.Withdrawals != 1 || m.Announcements != 2 {
		t.Errorf("metrics = %+v", m)
	}

	// The PeerSink fast path binds a single peer's queue.
	bound := f.PeerSink(k1)
	if err := bound.Apply(event.Batch{event.Announce(3*time.Second, p1, []uint32{2, 6})}); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	h1.Do(func(e *swiftengine.Engine) {
		if e.RIB().Path(p1) == nil {
			t.Error("bound sink event missing")
		}
	})
}

// TestFleetObserverAndPushMetrics drives one peer through a full burst
// and asserts the peer-attributed hooks fire and the aggregate metrics
// are push-fed (no engine walking).
func TestFleetObserverAndPushMetrics(t *testing.T) {
	key := PeerKey{AS: 2, BGPID: 7}
	var mu sync.Mutex
	var burstStarts, decisions, burstEnds, provisions int
	f := NewFleet(FleetConfig{
		Engine: func(k PeerKey) swiftengine.Config {
			cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: k.AS}
			cfg.Inference.TriggerEvery = 100
			cfg.Inference.UseHistory = false
			cfg.Burst.StartThreshold = 100
			cfg.Burst.StopThreshold = 9
			cfg.Encoding.MinPrefixes = 50
			return cfg
		},
		Observer: FleetObserver{
			OnBurstStart: func(k PeerKey, at time.Duration, withdrawals int) {
				mu.Lock()
				defer mu.Unlock()
				if k != key {
					t.Errorf("burst start attributed to %v", k)
				}
				burstStarts++
			},
			OnDecision: func(k PeerKey, d swiftengine.Decision) {
				mu.Lock()
				defer mu.Unlock()
				decisions++
			},
			OnBurstEnd: func(k PeerKey, at time.Duration, received int) {
				mu.Lock()
				defer mu.Unlock()
				burstEnds++
			},
			OnProvision: func(k PeerKey, info swiftengine.ProvisionInfo) {
				mu.Lock()
				defer mu.Unlock()
				provisions++
			},
		},
	})
	defer f.Close()

	// Table transfer through the Provisioner surface.
	var prefixes []netaddr.Prefix
	for i := 0; i < 500; i++ {
		p := netaddr.PrefixFor(8, i)
		prefixes = append(prefixes, p)
		f.Learn(key, p, []uint32{2, 5, 6})
	}
	h, _ := f.Lookup(key)
	h.LearnAlternate(3, prefixes[0], []uint32{3, 6})
	for _, p := range prefixes {
		h.LearnAlternate(3, p, []uint32{3, 6})
	}
	if err := f.Provision(key); err != nil {
		t.Fatal(err)
	}

	// Burst: withdraw 400, then a far-future tick closes it.
	b := make(event.Batch, 0, 401)
	for i, p := range prefixes[:400] {
		b = append(b, event.Withdraw(time.Duration(i)*time.Millisecond, p).WithPeer(key))
	}
	b = append(b, event.Tick(time.Hour).WithPeer(key))
	if err := f.Apply(b); err != nil {
		t.Fatal(err)
	}
	f.Sync()

	mu.Lock()
	defer mu.Unlock()
	if burstStarts != 1 || burstEnds != 1 {
		t.Errorf("burst starts=%d ends=%d, want 1/1", burstStarts, burstEnds)
	}
	if decisions == 0 {
		t.Fatal("no decisions observed")
	}
	// Initial provision + the burst-end fallback re-provision.
	if provisions != 2 {
		t.Errorf("provisions observed = %d, want 2", provisions)
	}
	m := f.Metrics()
	if m.Decisions != decisions {
		t.Errorf("push-fed decision count = %d, observer saw %d", m.Decisions, decisions)
	}
	if m.RulesInstalled == 0 {
		t.Error("push-fed rule count is zero")
	}
	if m.Rerouting != 0 {
		t.Errorf("rerouting gauge = %d after fallback, want 0", m.Rerouting)
	}
	if len(f.Decisions()) != decisions {
		t.Errorf("aggregated decision log has %d, want %d", len(f.Decisions()), decisions)
	}
}
