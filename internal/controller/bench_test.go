package controller

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// fleetBurstCycle builds one peer's self-restoring 10k-event burst
// cycle (the swift engine benchmark's workload, peer-attributed): 3,000
// withdrawals open a burst and trigger an inference, the same prefixes
// re-announce on a new path, steady-state refreshes drain the window,
// and a final tick closes the burst so the engine falls back. The
// engine ends every cycle in its starting state.
func fleetBurstCycle(peer PeerKey, prefixes []netaddr.Prefix) event.Batch {
	const nEvents = 10000
	const wd = 3000
	batch := make(event.Batch, 0, nEvents)
	at := time.Duration(0)
	for i := 0; i < wd; i++ {
		at += time.Millisecond
		batch = append(batch, event.Withdraw(at, prefixes[i]).WithPeer(peer))
	}
	newPath := []uint32{2, 9, 6}
	for i := 0; i < wd; i++ {
		at += time.Millisecond
		batch = append(batch, event.Announce(at, prefixes[i], newPath).WithPeer(peer))
	}
	oldPath := []uint32{2, 5, 6}
	for len(batch) < nEvents-1 {
		at += time.Millisecond
		batch = append(batch, event.Announce(at, prefixes[len(batch)%len(prefixes)], oldPath).WithPeer(peer))
	}
	return append(batch, event.Tick(at+time.Hour).WithPeer(peer))
}

func shiftFleetBatch(b event.Batch, span time.Duration) {
	for i := range b {
		b[i].At += span
	}
}

// BenchmarkFleetApplyParallel measures aggregate fleet throughput as
// engines are added over one shared path pool: every peer works the
// same full burst cycle (detect → infer → reroute → reconverge → fall
// back) concurrently, withdrawals and announcements interning against
// the same sharded pool, deliveries crossing the lock-free enqueue
// path. On a multi-core host aggregate events/s should scale
// near-linearly 1→8 engines; on a starved one the flat line bounds the
// coordination overhead.
func BenchmarkFleetApplyParallel(b *testing.B) {
	prefixes := make([]netaddr.Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	for _, engines := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("engines=%d", engines), func(b *testing.B) {
			f := NewFleet(FleetConfig{
				Engine: func(key PeerKey) swiftengine.Config {
					cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
					cfg.Inference.TriggerEvery = 2000
					cfg.Inference.UseHistory = false
					cfg.Burst.StartThreshold = 1500
					cfg.Encoding.MinPrefixes = 1000
					return cfg
				},
				OnPeer: func(p *FleetPeer) {
					for _, pfx := range prefixes {
						p.LearnPrimary(pfx, []uint32{2, 5, 6})
						p.LearnAlternate(3, pfx, []uint32{3, 6})
					}
					if err := p.Provision(); err != nil {
						b.Fatal(err)
					}
				},
				QueueDepth: 32,
			})
			defer f.Close()

			// Pre-build each peer's cycle, chunked the way a source
			// flushes (512-event single-peer batches).
			const chunk = 512
			peers := make([]*FleetPeer, engines)
			chunks := make([][]event.Batch, engines)
			var span time.Duration
			for i := 0; i < engines; i++ {
				key := PeerKey{AS: 2, BGPID: uint32(i + 1)}
				peers[i] = f.Peer(key)
				cycle := fleetBurstCycle(key, prefixes)
				span = cycle[len(cycle)-1].At + time.Hour
				for lo := 0; lo < len(cycle); lo += chunk {
					hi := lo + chunk
					if hi > len(cycle) {
						hi = len(cycle)
					}
					chunks[i] = append(chunks[i], cycle[lo:hi:hi])
				}
			}
			events := 0
			for _, c := range chunks[0] {
				events += len(c)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				var wg sync.WaitGroup
				for i := 0; i < engines; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						for _, c := range chunks[i] {
							if !peers[i].Enqueue(c) {
								b.Error("enqueue refused")
								return
							}
						}
						peers[i].Sync()
					}(i)
				}
				wg.Wait()
				b.StopTimer()
				for i := 0; i < engines; i++ {
					for _, c := range chunks[i] {
						shiftFleetBatch(c, span)
					}
				}
				b.StartTimer()
			}
			b.StopTimer()
			for i := 0; i < engines; i++ {
				got := 0
				peers[i].Do(func(e *swiftengine.Engine) { got = e.NumDecisions() })
				if got != b.N {
					b.Fatalf("peer %d made %d decisions over %d cycles; the workload is vacuous", i, got, b.N)
				}
			}
			b.ReportMetric(float64(engines), "peers")
			b.ReportMetric(float64(events*engines)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			// Per-cycle wall clock in milliseconds: the speedup curve is
			// this column flat (perfect overlap) vs linear (serialized).
			b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "ms/cycle")
		})
	}
}

// BenchmarkFleetIngest100 measures the dataplane fan-out: one
// BMP-station-shaped source — a single goroutine whose flushes carry
// short interleaved per-peer runs, the way many monitored sessions
// multiplex onto one TCP connection — feeding 100 engines through
// Fleet.Apply. Every announcement replaces the prefix's route (two
// paths alternate), so the number measures demux + shard delivery +
// real engine work, not a no-op fast path.
func BenchmarkFleetIngest100(b *testing.B) {
	const (
		nPeers    = 100
		nPrefixes = 128
		run       = 8   // events per peer per flush run
		chunk     = 512 // events per Apply batch
	)
	prefixes := make([]netaddr.Prefix, nPrefixes)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	pathA := []uint32{2, 5, 6}
	pathB := []uint32{2, 9, 6}

	f := NewFleet(FleetConfig{
		Engine: func(key PeerKey) swiftengine.Config {
			cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
			cfg.Inference.UseHistory = false
			return cfg
		},
		QueueDepth: 256,
	})
	defer f.Close()

	keys := make([]PeerKey, nPeers)
	for i := range keys {
		keys[i] = PeerKey{AS: 2, BGPID: uint32(i + 1)}
	}
	// Two streams, each a full-table refresh onto one path: rounds of
	// `run` consecutive events per peer, rotating through all peers.
	// Iterations alternate streams, so every announcement replaces the
	// prefix's route while the pool's interned paths stay live.
	build := func(path []uint32, at time.Duration) (event.Batch, time.Duration) {
		var stream event.Batch
		seq := make([]int, nPeers)
		for block := 0; block < nPrefixes/run; block++ {
			for pi, key := range keys {
				for e := 0; e < run; e++ {
					at += time.Microsecond
					stream = append(stream, event.Announce(at, prefixes[seq[pi]], path).WithPeer(key))
					seq[pi]++
				}
			}
		}
		return stream, at
	}
	streamB, at := build(pathB, 0)
	streamA, at := build(pathA, at)
	split := func(stream event.Batch) (out []event.Batch) {
		for lo := 0; lo < len(stream); lo += chunk {
			hi := lo + chunk
			if hi > len(stream) {
				hi = len(stream)
			}
			out = append(out, stream[lo:hi:hi])
		}
		return out
	}
	sides := [2][]event.Batch{split(streamB), split(streamA)}
	span := at + time.Second

	// Seed every table onto path A so each timed announcement is a
	// route replacement, not an insert.
	for _, key := range keys {
		p := f.Peer(key)
		for _, pfx := range prefixes {
			p.LearnPrimary(pfx, pathA)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		batches := sides[n%2]
		for _, batch := range batches {
			if err := f.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
		f.Sync()
		b.StopTimer()
		if n%2 == 1 {
			for _, side := range sides {
				for _, batch := range side {
					shiftFleetBatch(batch, span)
				}
			}
		}
		b.StartTimer()
	}
	b.StopTimer()
	for _, key := range keys {
		n := 0
		f.Peer(key).Do(func(e *swiftengine.Engine) { n = e.RIB().Len() })
		if n != nPrefixes {
			b.Fatalf("peer %s holds %d prefixes, want %d", key, n, nPrefixes)
		}
	}
	b.ReportMetric(float64(len(streamA))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "ms/cycle")
}
