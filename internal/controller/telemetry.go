package controller

import (
	"strconv"
	"time"

	swiftengine "swift/internal/swift"
	"swift/internal/telemetry"
	"swift/internal/topology"
)

// FleetTelemetry owns the per-peer metric families of an engine fleet
// and hands each new engine its pre-resolved handles. Construction
// registers the families once; EngineMetrics resolves one peer's label
// set once at peer creation — after that the hot path never sees a map.
//
// Wiring is one call: pass the fleet's FleetConfig through Instrument
// before NewFleet, then RegisterFleetMetrics after, and every engine,
// the shared pool and the per-peer FIBs report into the registry.
type FleetTelemetry struct {
	ring *telemetry.BurstRing

	withdrawals         *telemetry.CounterVec
	announcements       *telemetry.CounterVec
	burstsStarted       *telemetry.CounterVec
	burstsEnded         *telemetry.CounterVec
	decisions           *telemetry.CounterVec
	rules               *telemetry.CounterVec
	deferred            *telemetry.CounterVec
	provisions          *telemetry.CounterVec
	provisionsUnchanged *telemetry.CounterVec
	inferLatency        *telemetry.HistogramVec
	burstDuration       *telemetry.HistogramVec

	fusionProposals *telemetry.CounterVec
	fusionVetoed    *telemetry.CounterVec
	fusionExternal  *telemetry.CounterVec
	fusionVerdicts  *telemetry.Counter
	corroborating   *telemetry.Histogram
}

// NewFleetTelemetry registers the per-peer engine families on reg.
// ring, when non-nil, receives every peer's burst lifecycle records.
func NewFleetTelemetry(reg *telemetry.Registry, ring *telemetry.BurstRing) *FleetTelemetry {
	return &FleetTelemetry{
		ring: ring,
		withdrawals: reg.CounterVec("swift_peer_withdrawals_total",
			"Withdrawal events applied, per monitored peer.", "peer"),
		announcements: reg.CounterVec("swift_peer_announcements_total",
			"Announcement events applied, per monitored peer.", "peer"),
		burstsStarted: reg.CounterVec("swift_peer_bursts_started_total",
			"Withdrawal bursts opened by the detector, per peer.", "peer"),
		burstsEnded: reg.CounterVec("swift_peer_bursts_ended_total",
			"Withdrawal bursts closed by the detector, per peer.", "peer"),
		decisions: reg.CounterVec("swift_peer_decisions_total",
			"Accepted inferences (fast-reroute activations), per peer.", "peer"),
		rules: reg.CounterVec("swift_peer_rules_installed_total",
			"Stage-2 reroute rule writes performed, per peer.", "peer"),
		deferred: reg.CounterVec("swift_peer_inferences_deferred_total",
			"Inferences rejected by the plausibility gate, per peer.", "peer"),
		provisions: reg.CounterVec("swift_peer_provisions_total",
			"Successful provision passes (initial and fallback), per peer.", "peer"),
		provisionsUnchanged: reg.CounterVec("swift_peer_provisions_unchanged_total",
			"Fallback provisions skipped because BGP reconverged onto the provisioned routes, per peer.", "peer"),
		inferLatency: reg.HistogramVec("swift_peer_infer_latency_seconds",
			"Inference computation latency per run (accepted or not).",
			telemetry.DefLatencyBuckets, "peer"),
		burstDuration: reg.HistogramVec("swift_peer_burst_duration_seconds",
			"Closed burst duration on the virtual stream clock.",
			telemetry.DefDurationBuckets, "peer"),
		fusionProposals: reg.CounterVec("swift_fusion_evidence_total",
			"Inferences offered to the fleet fusion gate as evidence, per peer.", "peer"),
		fusionVetoed: reg.CounterVec("swift_fusion_vetoed_total",
			"Inferences the fusion conflict gate deferred, per peer.", "peer"),
		fusionExternal: reg.CounterVec("swift_fusion_pretrigger_total",
			"Externally-confirmed verdicts applied as pre-trigger reroutes, per peer.", "peer"),
		fusionVerdicts: reg.Counter("swift_fusion_verdicts_total",
			"Links confirmed by the fusion combining rule."),
		corroborating: reg.Histogram("swift_fusion_corroborating_peers",
			"Distinct peers supporting each link at confirmation time.",
			[]float64{1, 2, 3, 4, 6, 8}),
	}
}

// EngineMetrics resolves one peer's pre-resolved handle set.
func (t *FleetTelemetry) EngineMetrics(key PeerKey) swiftengine.Metrics {
	return t.EngineMetricsFor(key.String())
}

// EngineMetricsFor resolves the handle set for an arbitrary peer label
// — the entry point for single-session (eBGP mode) deployments that
// have no fleet PeerKey.
func (t *FleetTelemetry) EngineMetricsFor(peer string) swiftengine.Metrics {
	return swiftengine.Metrics{
		Withdrawals:         t.withdrawals.With(peer),
		Announcements:       t.announcements.With(peer),
		BurstsStarted:       t.burstsStarted.With(peer),
		BurstsEnded:         t.burstsEnded.With(peer),
		Decisions:           t.decisions.With(peer),
		RulesInstalled:      t.rules.With(peer),
		InferencesDeferred:  t.deferred.With(peer),
		Provisions:          t.provisions.With(peer),
		ProvisionsUnchanged: t.provisionsUnchanged.With(peer),
		FusionProposals:     t.fusionProposals.With(peer),
		FusionVetoed:        t.fusionVetoed.With(peer),
		FusionExternal:      t.fusionExternal.With(peer),
		InferLatency:        t.inferLatency.With(peer),
		BurstDuration:       t.burstDuration.With(peer),
	}
}

// Instrument returns cfg with telemetry injected: every engine the
// fleet builds gets its pre-resolved Metrics handles and, when the
// telemetry has a trace ring, a TraceObserver composed in front of any
// observer the factory set. The rest of cfg passes through untouched.
func (t *FleetTelemetry) Instrument(cfg FleetConfig) FleetConfig {
	inner := cfg.Engine
	cfg.Engine = func(key PeerKey) swiftengine.Config {
		ecfg := swiftengine.Config{PrimaryNeighbor: key.AS}
		if inner != nil {
			ecfg = inner(key)
		}
		ecfg.Metrics = t.EngineMetrics(key)
		if t.ring != nil {
			ecfg.Observer = swiftengine.TraceObserver(t.ring, key.String()).Then(ecfg.Observer)
		}
		return ecfg
	}
	if cfg.Fusion != nil && cfg.Fusion.OnVerdict == nil {
		cfg.Fusion.OnVerdict = func(_ topology.Link, supporters int, _ float64) {
			t.fusionVerdicts.Inc()
			t.corroborating.Observe(float64(supporters))
		}
	}
	return cfg
}

// PeerStatus is one fleet peer's operational snapshot — the /peers
// row of the ops plane.
type PeerStatus struct {
	Peer          string        `json:"peer"`
	AS            uint32        `json:"as"`
	Withdrawals   uint64        `json:"withdrawals"`
	Announcements uint64        `json:"announcements"`
	LastAt        time.Duration `json:"last_at_ns"`
	Provisioned   bool          `json:"provisioned"`
	RerouteActive bool          `json:"reroute_active"`
	Decisions     int           `json:"decisions"`
	Deferred      int           `json:"deferred"`
	RIBPrefixes   int           `json:"rib_prefixes"`
	FIBTags       int           `json:"fib_tags"`
	FIBRules      int           `json:"fib_rules"`
}

// Status snapshots the peer, locking its engine briefly.
func (p *FleetPeer) Status() PeerStatus {
	st := PeerStatus{
		Peer:          p.key.String(),
		AS:            p.key.AS,
		Withdrawals:   p.withdrawals.Load(),
		Announcements: p.announcements.Load(),
		LastAt:        p.LastAt(),
	}
	p.mu.Lock()
	st.Provisioned = p.engine.Scheme() != nil
	st.RerouteActive = p.engine.RerouteActive()
	st.Decisions = p.engine.NumDecisions()
	st.Deferred = p.engine.Deferred()
	st.RIBPrefixes = p.engine.RIB().Len()
	st.FIBTags = p.engine.FIB().NumTags()
	st.FIBRules = p.engine.FIB().NumRules()
	p.mu.Unlock()
	return st
}

// PeerStatuses snapshots every peer, sorted by key.
func (f *Fleet) PeerStatuses() []PeerStatus {
	peers := f.Peers()
	out := make([]PeerStatus, 0, len(peers))
	for _, p := range peers {
		out = append(out, p.Status())
	}
	return out
}

// PeerStatus snapshots a single-session controller under the given
// peer label — the eBGP-mode counterpart of FleetPeer.Status.
func (c *Controller) PeerStatus(peer string, as uint32) PeerStatus {
	st := PeerStatus{
		Peer:          peer,
		AS:            as,
		Withdrawals:   c.withdrawals.Load(),
		Announcements: c.announcements.Load(),
		LastAt:        time.Since(c.start),
	}
	c.mu.Lock()
	st.Provisioned = c.engine.Scheme() != nil
	st.RerouteActive = c.engine.RerouteActive()
	st.Decisions = c.engine.NumDecisions()
	st.Deferred = c.engine.Deferred()
	st.RIBPrefixes = c.engine.RIB().Len()
	st.FIBTags = c.engine.FIB().NumTags()
	st.FIBRules = c.engine.FIB().NumRules()
	c.mu.Unlock()
	return st
}

// RegisterControllerMetrics exports a single-session controller's
// scrape-time state on reg, under the same family names the fleet
// uses so dashboards work across both deployment modes.
func RegisterControllerMetrics(reg *telemetry.Registry, c *Controller, peer string, as uint32) {
	fibTags := reg.GaugeVec("swift_fib_tags", "Stage-1 tagged prefixes, per peer.", "peer")
	fibRules := reg.GaugeVec("swift_fib_rules", "Stage-2 rules installed, per peer.", "peer")
	ribPrefixes := reg.GaugeVec("swift_rib_prefixes", "Primary RIB prefixes, per peer.", "peer")
	rerouting := reg.Gauge("swift_fleet_rerouting_peers",
		"Peers with fast-reroute rules installed right now.")
	reg.OnScrape(func() {
		st := c.PeerStatus(peer, as)
		fibTags.With(peer).Set(float64(st.FIBTags))
		fibRules.With(peer).Set(float64(st.FIBRules))
		ribPrefixes.With(peer).Set(float64(st.RIBPrefixes))
		if st.RerouteActive {
			rerouting.Set(1)
		} else {
			rerouting.Set(0)
		}
	})
}

// RegisterFleetMetrics exports the fleet's aggregate and scrape-time
// state on reg: delivery counters (sampled from the fleet's own
// atomics, so nothing is double-counted), pool occupancy and shard
// balance, and per-peer FIB sizes (Reset-and-refill each scrape, so
// closed peers don't linger as stale series).
func RegisterFleetMetrics(reg *telemetry.Registry, f *Fleet) {
	reg.CounterFunc("swift_fleet_batches_total",
		"Event batches enqueued across all peers.",
		func() uint64 { return f.batches.Load() })
	reg.CounterFunc("swift_fleet_events_total",
		"Withdraw/announce events applied across all peers (ticks excluded).",
		func() uint64 { return f.ops.Load() })

	peers := reg.Gauge("swift_fleet_peers", "Live peers in the fleet.")
	rerouting := reg.Gauge("swift_fleet_rerouting_peers",
		"Peers with fast-reroute rules installed right now.")
	reg.CounterFunc("swift_fleet_ring_full_total",
		"Batch pushes that found their shard ring full and had to block (backpressure).",
		func() uint64 {
			var n uint64
			for _, w := range f.workers {
				n += w.full.Load()
			}
			return n
		})
	ringDepth := reg.GaugeVec("swift_fleet_ring_depth",
		"Deliveries buffered in each shard worker's ring.", "shard")
	shardPeers := reg.GaugeVec("swift_fleet_shard_peers",
		"Live peers pinned to each shard worker.", "shard")
	poolPaths := reg.Gauge("swift_pool_paths", "Live interned AS paths in the shared pool.")
	poolLinks := reg.Gauge("swift_pool_links", "Numbered AS links in the shared pool.")
	poolFree := reg.Gauge("swift_pool_free_slots", "Freed intern slots awaiting reuse.")
	poolShardMax := reg.Gauge("swift_pool_shard_paths_max",
		"Most-loaded intern shard's live path count (compare against swift_pool_paths/16 for balance).")
	fibTags := reg.GaugeVec("swift_fib_tags", "Stage-1 tagged prefixes, per peer.", "peer")
	fibRules := reg.GaugeVec("swift_fib_rules", "Stage-2 rules installed, per peer.", "peer")
	ribPrefixes := reg.GaugeVec("swift_rib_prefixes", "Primary RIB prefixes, per peer.", "peer")

	if agg := f.Fusion(); agg != nil {
		reg.GaugeFunc("swift_fusion_bursting_peers",
			"Fleet peers currently in-burst as seen by the fusion aggregator.",
			func() float64 { return float64(agg.Stats().Bursting) })
		reg.GaugeFunc("swift_fusion_verdict_links",
			"Links currently confirmed by the fusion combining rule.",
			func() float64 { return float64(agg.Stats().VerdictLinks) })
		reg.CounterFunc("swift_fusion_epoch",
			"Fusion verdict epoch (bumps whenever the confirmed link set changes).",
			func() uint64 { return agg.Stats().Epoch })
	}

	reg.OnScrape(func() {
		ps := f.pool.Stats()
		poolPaths.Set(float64(ps.Paths))
		poolLinks.Set(float64(ps.Links))
		poolFree.Set(float64(ps.FreeSlots))
		poolShardMax.Set(float64(ps.MaxShardPaths()))
		rerouting.Set(float64(f.rerouting.Load()))

		fibTags.Reset()
		fibRules.Reset()
		ribPrefixes.Reset()
		list := f.Peers()
		peers.Set(float64(len(list)))
		perShard := make([]int, len(f.workers))
		for _, p := range list {
			st := p.Status()
			fibTags.With(st.Peer).Set(float64(st.FIBTags))
			fibRules.With(st.Peer).Set(float64(st.FIBRules))
			ribPrefixes.With(st.Peer).Set(float64(st.RIBPrefixes))
			perShard[p.worker.idx]++
		}
		for _, w := range f.workers {
			shard := strconv.Itoa(w.idx)
			ringDepth.With(shard).Set(float64(w.ring.Len()))
			shardPeers.With(shard).Set(float64(perShard[w.idx]))
		}
	})
}
