package controller

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/fusion"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// TestFleetPerPeerFIFOAcrossShards is the per-peer ordering property
// test for the sharded dataplane: many peers spread across every shard
// worker, each fed a sequence of single-withdrawal bursts whose start
// times encode the enqueue order, producers interleaving their peers'
// events into shared mixed batches with randomized run lengths. If the
// demux, the ring, or the worker ever reorders one peer's deliveries,
// a burst-start timestamp arrives out of sequence.
func TestFleetPerPeerFIFOAcrossShards(t *testing.T) {
	const (
		producers = 3
		perProd   = 4 // peers per producer
		rounds    = 40
	)
	var mu sync.Mutex
	starts := make(map[PeerKey][]time.Duration)
	f := NewFleet(FleetConfig{
		Engine: func(key PeerKey) swiftengine.Config {
			cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
			cfg.Burst.StartThreshold = 1
			cfg.Inference.TriggerEvery = 1 << 20
			cfg.Inference.UseHistory = false
			return cfg
		},
		Observer: FleetObserver{
			OnBurstStart: func(peer PeerKey, at time.Duration, _ int) {
				mu.Lock()
				starts[peer] = append(starts[peer], at)
				mu.Unlock()
			},
		},
		QueueDepth: 8, // small rings so wraparound and backpressure engage
		Workers:    4,
	})
	defer f.Close()

	pfx := netaddr.PrefixFor(8, 1)
	var wg sync.WaitGroup
	for prod := 0; prod < producers; prod++ {
		wg.Add(1)
		go func(prod int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(prod + 1)))
			keys := make([]PeerKey, perProd)
			next := make([]int, perProd)
			for i := range keys {
				keys[i] = PeerKey{AS: 2, BGPID: uint32(prod*perProd + i + 1)}
			}
			var batch event.Batch
			for {
				done := true
				// Random run lengths over this producer's peers; one
				// mixed batch may carry several peers and several rounds.
				for i, key := range keys {
					runLen := 1 + rng.Intn(3)
					for r := 0; r < runLen && next[i] < rounds; r++ {
						at := time.Duration(next[i]) * 2 * time.Hour
						batch = append(batch,
							event.Withdraw(at+time.Second, pfx).WithPeer(key),
							event.Tick(at+time.Hour).WithPeer(key))
						next[i]++
					}
					if next[i] < rounds {
						done = false
					}
				}
				if len(batch) > 0 {
					if err := f.Apply(batch); err != nil {
						t.Errorf("producer %d: %v", prod, err)
						return
					}
					batch = nil // retained until applied
				}
				if done {
					return
				}
			}
		}(prod)
	}
	wg.Wait()
	f.Sync()

	mu.Lock()
	defer mu.Unlock()
	if len(starts) != producers*perProd {
		t.Fatalf("bursts observed on %d peers, want %d", len(starts), producers*perProd)
	}
	for key, ats := range starts {
		if len(ats) != rounds {
			t.Errorf("peer %s: %d bursts, want %d", key, len(ats), rounds)
			continue
		}
		for i, at := range ats {
			want := time.Duration(i)*2*time.Hour + time.Second
			if at != want {
				t.Fatalf("peer %s: burst %d started at %v, want %v — deliveries reordered", key, i, at, want)
			}
		}
	}
}

// TestFleetApplyMixedAllocs pins the mixed-batch demux: splitting an
// interleaved batch into per-peer runs must not allocate (the old demux
// built a map and an order slice per batch).
func TestFleetApplyMixedAllocs(t *testing.T) {
	f := NewFleet(FleetConfig{QueueDepth: 1024})
	defer f.Close()
	keyA := PeerKey{AS: 2, BGPID: 1}
	keyB := PeerKey{AS: 2, BGPID: 2}
	// Tick-only events: the engines' quiet-state tick path does no
	// work, so every allocation measured belongs to the delivery layer.
	mixed := make(event.Batch, 0, 8)
	for i := 0; i < 4; i++ {
		at := time.Duration(i+1) * time.Second
		mixed = append(mixed,
			event.Tick(at).WithPeer(keyA),
			event.Tick(at).WithPeer(keyB))
	}
	// Warm up: create both peers and grow any lazy buffers.
	for i := 0; i < 16; i++ {
		if err := f.Apply(mixed); err != nil {
			t.Fatal(err)
		}
	}
	f.Sync()
	avg := testing.AllocsPerRun(100, func() {
		if err := f.Apply(mixed); err != nil {
			t.Fatal(err)
		}
	})
	f.Sync()
	if avg >= 1 {
		t.Errorf("mixed-batch Apply allocates %.1f objects per batch, want 0", avg)
	}
}

// TestFleetDataplaneChurnRace interleaves every mutating surface of
// the sharded dataplane — mixed-batch Apply across all peers, per-peer
// teardown, manual fusion pumps, and finally Close racing them all —
// so the race detector can see any unsynchronized state. Run with
// -race in CI.
func TestFleetDataplaneChurnRace(t *testing.T) {
	const peers = 8
	prefixes := make([]netaddr.Prefix, 64)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	cfg := FleetConfig{
		Fusion: &fusion.Config{ManualPump: true},
		Engine: func(key PeerKey) swiftengine.Config {
			ecfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
			ecfg.Burst.StartThreshold = 8
			ecfg.Inference.TriggerEvery = 16
			ecfg.Inference.UseHistory = false
			ecfg.Encoding.MinPrefixes = 1 << 20
			return ecfg
		},
		OnPeer: func(p *FleetPeer) {
			for _, pfx := range prefixes {
				p.LearnPrimary(pfx, []uint32{2, 5, 6})
				p.LearnAlternate(3, pfx, []uint32{3, 6})
			}
		},
		QueueDepth: 16,
		Workers:    3, // not a divisor of peers: shards stay uneven
	}
	f := NewFleet(cfg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Applier: mixed batches touching every peer.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			at := time.Duration(a) * time.Minute
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				var b event.Batch
				for pi := 0; pi < peers; pi++ {
					key := PeerKey{AS: 2, BGPID: uint32(pi + 1)}
					at += time.Millisecond
					if round%8 == 7 {
						b = append(b, event.Tick(at+time.Hour).WithPeer(key))
					} else {
						b = append(b, event.Withdraw(at, prefixes[round%len(prefixes)]).WithPeer(key))
					}
				}
				if err := f.Apply(b); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Error(err)
					return
				}
			}
		}(a)
	}
	// Churner: tear peers down while their batches are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.ClosePeer(PeerKey{AS: 2, BGPID: uint32(rng.Intn(peers) + 1)})
			time.Sleep(time.Millisecond)
		}
	}()
	// Pumper: manual fusion fan-out under the peer locks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f.FusePump(time.Duration(i) * time.Second)
		}
	}()

	time.Sleep(200 * time.Millisecond)
	// Close while appliers, churner and pumper are still running.
	f.Close()
	close(stop)
	wg.Wait()

	if err := f.Apply(event.Batch{event.Tick(time.Hour).WithPeer(PeerKey{AS: 2, BGPID: 1})}); !errors.Is(err, ErrClosed) {
		t.Errorf("Apply after Close = %v, want ErrClosed", err)
	}
	_ = f.Metrics() // must not deadlock or race post-close
}

// TestFleetShardAssignmentStable pins the peer→shard map: the same key
// always lands on the same worker, including across teardown and
// re-creation — the property per-peer FIFO rests on.
func TestFleetShardAssignmentStable(t *testing.T) {
	f := NewFleet(FleetConfig{Workers: 4})
	defer f.Close()
	for i := 0; i < 32; i++ {
		key := PeerKey{AS: uint32(i % 5), BGPID: uint32(i)}
		first := f.Peer(key).worker.idx
		f.ClosePeer(key)
		if again := f.Peer(key).worker.idx; again != first {
			t.Fatalf("key %s moved shard %d → %d across re-creation", key, first, again)
		}
	}
	counts := make(map[int]int)
	for _, p := range f.Peers() {
		counts[p.worker.idx]++
	}
	if len(counts) < 2 {
		t.Errorf("32 peers all landed on %d shard(s); assignment is degenerate", len(counts))
	}
}
