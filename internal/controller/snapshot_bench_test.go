package controller

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/mrt"
	"swift/internal/netaddr"
	swiftengine "swift/internal/swift"
)

// Warm restart vs cold start, the ISSUE's headline number: restoring a
// ≥100k-prefix fleet from the binary snapshot must beat re-ingesting
// the equivalent MRT archive by ≥50x. A SWIFT monitor's state is not
// just the RIB: the burst histories and inference state the engines
// accumulate come from the *update stream*, so the cold baseline
// replays what a collector archive actually holds — the TABLE_DUMP_V2
// snapshot plus the BGP4MP update file whose withdrawal bursts produced
// the histories the snapshot carries (the paper's §7 long-lived-monitor
// motivation: losing this state means re-ingesting the archive, not
// just the table). Both paths end in the same provisioned,
// burst-experienced fleet — pinned byte-identical by
// TestFleetRestoreEquivalentToReingest — so the ratio isolates the
// snapshot's claim: no MRT decode, no re-interning, no plan/scheme/FIB
// recompilation, no burst replay.

const (
	benchRestorePeers    = 2
	benchRestorePrefixes = 52_000 // x2 peers >= 100k routes fleet-wide
	benchBurstCycles     = 1080   // hourly bursts per peer: a 45-day archive tail
	benchBurstPrefixes   = 3000   // prefixes withdrawn per burst
)

var benchEpoch = time.Unix(1_700_000_000, 0)

func benchRestoreConfig(b testing.TB) FleetConfig {
	// Alternates are preloaded by OnPeer on the cold path; the restore
	// path carries them inside the snapshot (RestoreFleet skips OnPeer),
	// which is exactly the work warm restart is supposed to avoid.
	return FleetConfig{
		Engine: func(key PeerKey) swiftengine.Config {
			cfg := swiftengine.Config{LocalAS: 1, PrimaryNeighbor: 2}
			cfg.Inference.TriggerEvery = 2000
			cfg.Inference.UseHistory = true
			cfg.Burst.StartThreshold = 1500
			cfg.Encoding.MinPrefixes = 500
			return cfg
		},
		OnPeer: func(p *FleetPeer) {
			for i := 0; i < benchRestorePrefixes; i++ {
				p.LearnAlternate(3, netaddr.PrefixFor(8, i), []uint32{3, 6})
			}
		},
	}
}

func benchPeerKey(i int) PeerKey { return PeerKey{AS: 2, BGPID: uint32(i + 1)} }

func benchPath(i int) []uint32 { return []uint32{2, 100 + uint32(i%64), 6} }

// benchRIBDump renders the benchmark table as an in-memory MRT
// TABLE_DUMP_V2 snapshot — the artifact a cold start would re-ingest.
func benchRIBDump(b testing.TB) []byte {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	ts := benchEpoch
	if err := w.WritePeerIndexTable(ts, 0x0a000001, []mrt.PeerEntry{
		{ID: 1, IP: 0x0a000002, AS: 2},
	}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRestorePrefixes; i++ {
		err := w.WriteRIBIPv4(ts, &mrt.RIBRecord{
			Sequence: uint32(i),
			Prefix:   netaddr.PrefixFor(8, i),
			Entries: []mrt.RIBEntry{{
				PeerIndex:  0,
				Originated: ts,
				Attrs:      bgp.Attrs{ASPath: benchPath(i), HasNextHop: true, NextHop: 0x0a000002},
			}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchUpdateArchive renders the BGP4MP update file the archive pairs
// with the RIB dump: benchBurstCycles withdrawal-burst cycles, an hour
// apart, each withdrawing benchBurstPrefixes prefixes in a few seconds
// (opening a burst and triggering inference), re-announcing them on the
// post-failure path, then refreshing the steady-state path. Withdrawals
// and announcements pack a handful of prefixes per UPDATE, the way
// collector archives do.
func benchUpdateArchive(b testing.TB) []byte {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	const pack = 8
	write := func(ts time.Time, u *bgp.Update) {
		if err := w.WriteBGP4MP(ts, 2, 1, 0x0a000002, 0x0a000001, u); err != nil {
			b.Fatal(err)
		}
	}
	var prefixes [pack]netaddr.Prefix
	chunk := func(i int) []netaddr.Prefix {
		n := 0
		for j := i; j < i+pack && j < benchBurstPrefixes; j++ {
			prefixes[n] = netaddr.PrefixFor(8, j)
			n++
		}
		return prefixes[:n]
	}
	for c := 0; c < benchBurstCycles; c++ {
		at := benchEpoch.Add(time.Duration(c+1) * time.Hour)
		for i := 0; i < benchBurstPrefixes; i += pack {
			// ~1000 withdrawals per archive second: a sharp burst.
			ts := at.Add(time.Duration(i/1000) * time.Second)
			write(ts, &bgp.Update{Withdrawn: append([]netaddr.Prefix(nil), chunk(i)...)})
		}
		reroute := at.Add(30 * time.Second)
		newPath := bgp.Attrs{ASPath: []uint32{2, 9, 6}, HasNextHop: true, NextHop: 0x0a000002}
		for i := 0; i < benchBurstPrefixes; i += pack {
			write(reroute, &bgp.Update{Attrs: newPath, NLRI: append([]netaddr.Prefix(nil), chunk(i)...)})
		}
		settle := at.Add(60 * time.Second)
		oldPath := bgp.Attrs{ASPath: []uint32{2, 5, 6}, HasNextHop: true, NextHop: 0x0a000002}
		for i := 0; i < benchBurstPrefixes; i += pack {
			write(settle, &bgp.Update{Attrs: oldPath, NLRI: append([]netaddr.Prefix(nil), chunk(i)...)})
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// coldIngest builds the fleet the slow way: decode the TABLE_DUMP_V2
// dump, provision every peer from it, then replay the whole update
// archive through the engines — exactly like swiftd re-ingesting a
// collector archive after losing its state.
func coldIngest(b testing.TB, rib, updates []byte) *Fleet {
	f := NewFleet(benchRestoreConfig(b))
	for i := 0; i < benchRestorePeers; i++ {
		src := mrt.Source{
			Updates:   bytes.NewReader(updates),
			RIB:       bytes.NewReader(rib),
			Peer:      benchPeerKey(i),
			Epoch:     benchEpoch,
			FinalTick: time.Hour,
		}
		if err := src.Run(f); err != nil {
			f.Close()
			b.Fatal(err)
		}
	}
	f.Sync()
	return f
}

// checkRestoredFleet asserts the fleet is fully populated. The decision
// log is deliberately not part of the snapshot, so only the cold path
// (cold=true) is held to having made inferences during the replay.
func checkRestoredFleet(b testing.TB, f *Fleet, cold bool) {
	if f.Len() != benchRestorePeers {
		b.Fatalf("fleet has %d peers, want %d", f.Len(), benchRestorePeers)
	}
	for i := 0; i < benchRestorePeers; i++ {
		p, ok := f.Lookup(benchPeerKey(i))
		if !ok {
			b.Fatalf("peer %d missing", i)
		}
		var routes, tags, decided int
		p.Do(func(e *swiftengine.Engine) {
			routes = e.RIB().Len()
			tags = e.FIB().NumTags()
			decided = e.NumDecisions()
		})
		if routes != benchRestorePrefixes {
			b.Fatalf("peer %d holds %d routes, want %d", i, routes, benchRestorePrefixes)
		}
		if tags == 0 {
			b.Fatalf("peer %d restored with an empty FIB; the workload is vacuous", i)
		}
		if cold && decided == 0 {
			b.Fatalf("peer %d replayed the archive without a single inference; the baseline is vacuous", i)
		}
	}
}

// BenchmarkFleetReingestMRT is the cold-start baseline: per iteration,
// decode the TABLE_DUMP_V2 dump for each peer, intern every path,
// compile plan, scheme and FIB from scratch, and replay the update
// archive to rebuild the burst histories and inference state.
func BenchmarkFleetReingestMRT(b *testing.B) {
	rib := benchRIBDump(b)
	updates := benchUpdateArchive(b)
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		f := coldIngest(b, rib, updates)
		b.StopTimer()
		checkRestoredFleet(b, f, true)
		f.Close()
		// Collect the iteration's garbage while the clock is stopped so
		// the next iteration is not charged for it (single-core host: GC
		// assists land on the mutator). Applied to both benchmarks alike.
		runtime.GC()
		b.StartTimer()
	}
	b.ReportMetric(float64(benchRestorePeers*benchRestorePrefixes), "routes")
	b.ReportMetric(float64(len(updates)), "archive_bytes")
}

// BenchmarkFleetRestore is the warm path: per iteration, rebuild the
// same fleet from the binary snapshot.
func BenchmarkFleetRestore(b *testing.B) {
	rib := benchRIBDump(b)
	seed := coldIngest(b, rib, benchUpdateArchive(b))
	var snap bytes.Buffer
	if err := seed.Snapshot(&snap); err != nil {
		b.Fatal(err)
	}
	seed.Close()
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		f, err := RestoreFleet(bytes.NewReader(snap.Bytes()), benchRestoreConfig(b))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		checkRestoredFleet(b, f, false)
		f.Close()
		runtime.GC()
		b.StartTimer()
	}
	b.ReportMetric(float64(benchRestorePeers*benchRestorePrefixes), "routes")
	b.ReportMetric(float64(snap.Len()), "snap_bytes")
}

// TestFleetRestoreEquivalentToReingest pins that the two benchmark
// paths build the same fleet: identical FIB dumps per peer, so the
// speedup is not bought with a weaker end state.
func TestFleetRestoreEquivalentToReingest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 104k-route fleet twice")
	}
	rib := benchRIBDump(t)
	cold := coldIngest(t, rib, benchUpdateArchive(t))
	defer cold.Close()
	var snap bytes.Buffer
	if err := cold.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	warm, err := RestoreFleet(bytes.NewReader(snap.Bytes()), benchRestoreConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	for i := 0; i < benchRestorePeers; i++ {
		cv, wv := viewOf(cold.Peer(benchPeerKey(i))), viewOf(warm.Peer(benchPeerKey(i)))
		if cv.fib != wv.fib {
			t.Errorf("peer %d: restored FIB dump differs from cold-ingested", i)
		}
		if cv.routes != wv.routes {
			t.Errorf("peer %d: routes %d cold, %d warm", i, cv.routes, wv.routes)
		}
	}
}
