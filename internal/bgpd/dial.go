package bgpd

import (
	"fmt"
	"net"
	"time"
)

// Dial connects to addr (host:port) and establishes a BGP session as the
// active opener.
func Dial(addr string, cfg Config) (*Session, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("bgpd: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return Establish(conn, cfg)
}

// Accept waits for one inbound connection on l and establishes a BGP
// session as the passive opener.
func Accept(l net.Listener, cfg Config) (*Session, error) {
	conn, err := l.Accept()
	if err != nil {
		return nil, fmt.Errorf("bgpd: accept: %w", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return Establish(conn, cfg)
}
