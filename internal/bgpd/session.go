// Package bgpd implements a minimal but real BGP-4 speaker on top of
// net.Conn: OPEN handshake with capability negotiation, keepalive and
// hold timers, and full-duplex UPDATE exchange. It is the substrate for
// the §7 case study, where a SWIFT controller maintains live eBGP
// sessions with the peers of the router it protects (the role ExaBGP
// plays in the paper's deployment).
//
// The FSM is the RFC 4271 one reduced to the transport this repository
// uses (a connected net.Conn handed to the session, so Connect/Active
// states collapse into the dial performed by the caller).
package bgpd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/bgp"
)

// State is the session FSM state, exported for introspection and tests.
type State int32

// FSM states (RFC 4271 §8.2.2). Connect/Active are represented by the
// caller owning an un-handshaked conn; the session starts at OpenSent.
const (
	StateIdle State = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
	StateClosed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	case StateClosed:
		return "Closed"
	}
	return "unknown"
}

// Config parameterizes a Session.
type Config struct {
	LocalAS  uint32
	RouterID uint32
	// HoldTime is the proposed hold time; the RFC minimum of the two
	// proposals wins. Zero selects the 90 s default. Values below 3 s
	// (other than 0) are rejected by the wire encoder.
	HoldTime time.Duration
	// Logf, when non-nil, receives one line per session event.
	Logf func(format string, args ...any)
}

func (c Config) holdTime() time.Duration {
	if c.HoldTime == 0 {
		return 90 * time.Second
	}
	return c.HoldTime
}

// Session is an established BGP session. Updates received from the peer
// are delivered on Updates(); Send transmits updates to the peer. Both
// directions are safe for concurrent use.
type Session struct {
	conn    net.Conn
	cfg     Config
	peerAS  uint32
	peerID  uint32
	hold    time.Duration
	state   atomic.Int32
	updates chan *bgp.Update

	writeMu sync.Mutex
	closeMu sync.Mutex
	closed  bool
	errVal  atomic.Value // error
	done    chan struct{}
}

// ErrClosed is returned by Send after the session has terminated.
var ErrClosed = errors.New("bgpd: session closed")

// Establish performs the OPEN/KEEPALIVE handshake on conn and returns an
// established session. It drives both the active and passive side: BGP's
// handshake is symmetric once the TCP connection exists. The conn is
// owned by the session afterwards and closed with it.
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	s := &Session{
		conn:    conn,
		cfg:     cfg,
		hold:    cfg.holdTime(),
		updates: make(chan *bgp.Update, 1024),
		done:    make(chan struct{}),
	}
	s.state.Store(int32(StateOpenSent))

	deadline := time.Now().Add(30 * time.Second)
	_ = conn.SetDeadline(deadline)

	open := &bgp.Open{
		AS:       cfg.LocalAS,
		HoldTime: uint16(s.hold / time.Second),
		RouterID: cfg.RouterID,
	}
	// The handshake is symmetric: both ends send OPEN before reading.
	// Writes must therefore proceed concurrently with the read, or two
	// speakers over an unbuffered transport (net.Pipe in tests) deadlock.
	openErr := make(chan error, 1)
	go func() { openErr <- bgp.WriteMessage(conn, open) }()

	h, body, err := bgp.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("bgpd: reading OPEN: %w", err)
	}
	if h.Type != bgp.TypeOpen {
		conn.Close()
		return nil, fmt.Errorf("bgpd: expected OPEN, got type %d", h.Type)
	}
	var peerOpen bgp.Open
	if err := peerOpen.Decode(body); err != nil {
		conn.Close()
		return nil, fmt.Errorf("bgpd: decoding OPEN: %w", err)
	}
	if peerOpen.Version != bgp.Version {
		s.notifyAndClose(bgp.NotifOpenError, 1)
		return nil, fmt.Errorf("bgpd: unsupported BGP version %d", peerOpen.Version)
	}
	s.peerAS = peerOpen.AS
	s.peerID = peerOpen.RouterID
	if peerHold := time.Duration(peerOpen.HoldTime) * time.Second; peerHold != 0 && peerHold < s.hold {
		s.hold = peerHold
	}
	s.state.Store(int32(StateOpenConfirm))
	if err := <-openErr; err != nil {
		conn.Close()
		return nil, fmt.Errorf("bgpd: sending OPEN: %w", err)
	}

	kaErr := make(chan error, 1)
	go func() { kaErr <- bgp.WriteMessage(conn, bgp.Keepalive{}) }()
	h, _, err = bgp.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("bgpd: awaiting KEEPALIVE: %w", err)
	}
	if h.Type != bgp.TypeKeepalive {
		s.notifyAndClose(bgp.NotifFSMError, 0)
		return nil, fmt.Errorf("bgpd: expected KEEPALIVE, got type %d", h.Type)
	}
	if err := <-kaErr; err != nil {
		conn.Close()
		return nil, fmt.Errorf("bgpd: sending KEEPALIVE: %w", err)
	}

	_ = conn.SetDeadline(time.Time{})
	s.state.Store(int32(StateEstablished))
	s.logf("session established: peer AS%d id %08x hold %v", s.peerAS, s.peerID, s.hold)

	go s.readLoop()
	go s.keepaliveLoop()
	return s, nil
}

// State returns the current FSM state.
func (s *Session) State() State { return State(s.state.Load()) }

// PeerAS returns the negotiated peer AS number.
func (s *Session) PeerAS() uint32 { return s.peerAS }

// PeerID returns the peer's BGP identifier.
func (s *Session) PeerID() uint32 { return s.peerID }

// HoldTime returns the negotiated hold time.
func (s *Session) HoldTime() time.Duration { return s.hold }

// Updates returns the channel of UPDATE messages received from the peer.
// The channel is closed when the session terminates.
func (s *Session) Updates() <-chan *bgp.Update { return s.updates }

// Done is closed when the session has fully terminated.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err returns the terminal error, or nil while the session is healthy or
// after a clean Close.
func (s *Session) Err() error {
	if v := s.errVal.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Send transmits UPDATE messages to the peer in order.
func (s *Session) Send(updates ...*bgp.Update) error {
	if s.State() != StateEstablished {
		return ErrClosed
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	var buf []byte
	for _, u := range updates {
		var err error
		buf, err = u.AppendWire(buf)
		if err != nil {
			return err
		}
	}
	if _, err := s.conn.Write(buf); err != nil {
		s.fail(fmt.Errorf("bgpd: write: %w", err))
		return err
	}
	return nil
}

// Close terminates the session cleanly with a CEASE notification.
func (s *Session) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	s.closeMu.Unlock()

	s.state.Store(int32(StateClosed))
	s.writeMu.Lock()
	n := &bgp.Notification{Code: bgp.NotifCease}
	if buf, err := n.AppendWire(nil); err == nil {
		_ = s.conn.SetWriteDeadline(time.Now().Add(time.Second))
		_, _ = s.conn.Write(buf)
	}
	s.writeMu.Unlock()
	err := s.conn.Close()
	return err
}

func (s *Session) notifyAndClose(code, subcode uint8) {
	n := &bgp.Notification{Code: code, Subcode: subcode}
	if buf, err := n.AppendWire(nil); err == nil {
		_, _ = s.conn.Write(buf)
	}
	s.conn.Close()
	s.state.Store(int32(StateClosed))
}

func (s *Session) fail(err error) {
	s.closeMu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if !alreadyClosed {
		s.errVal.CompareAndSwap(nil, err)
		s.logf("session failed: %v", err)
		s.conn.Close()
	}
	s.state.Store(int32(StateClosed))
}

func (s *Session) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf("bgpd: "+format, args...)
	}
}

// readLoop receives messages until the session dies, enforcing the hold
// timer by bounding each read.
func (s *Session) readLoop() {
	defer close(s.updates)
	defer close(s.done)
	for {
		if s.hold > 0 {
			_ = s.conn.SetReadDeadline(time.Now().Add(s.hold))
		}
		h, body, err := bgp.ReadMessage(s.conn)
		if err != nil {
			if s.State() != StateClosed {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					s.writeMu.Lock()
					n := &bgp.Notification{Code: bgp.NotifHoldTimer}
					if buf, e := n.AppendWire(nil); e == nil {
						_, _ = s.conn.Write(buf)
					}
					s.writeMu.Unlock()
					s.fail(errors.New("bgpd: hold timer expired"))
				} else {
					s.fail(err)
				}
			}
			return
		}
		switch h.Type {
		case bgp.TypeKeepalive:
			// Hold timer already reset by the successful read.
		case bgp.TypeUpdate:
			u := new(bgp.Update)
			if err := u.Decode(body); err != nil {
				s.writeMu.Lock()
				n := &bgp.Notification{Code: bgp.NotifUpdateError}
				if buf, e := n.AppendWire(nil); e == nil {
					_, _ = s.conn.Write(buf)
				}
				s.writeMu.Unlock()
				s.fail(fmt.Errorf("bgpd: malformed update: %w", err))
				return
			}
			select {
			case s.updates <- u:
			default:
				// Receiver is not draining; block rather than drop, BGP is
				// loss-intolerant. TCP backpressure is the real-world analog.
				s.updates <- u
			}
		case bgp.TypeNotification:
			var n bgp.Notification
			if err := n.Decode(body); err == nil && n.Code == bgp.NotifCease {
				s.closeMu.Lock()
				s.closed = true
				s.closeMu.Unlock()
				s.state.Store(int32(StateClosed))
				s.conn.Close()
				return
			}
			_ = n.Decode(body)
			s.fail(&n)
			return
		default:
			s.fail(fmt.Errorf("bgpd: unexpected message type %d in Established", h.Type))
			return
		}
	}
}

// keepaliveLoop sends KEEPALIVEs at one third of the hold time (RFC
// 4271's recommendation).
func (s *Session) keepaliveLoop() {
	if s.hold == 0 {
		return
	}
	t := time.NewTicker(s.hold / 3)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if s.State() != StateEstablished {
				return
			}
			s.writeMu.Lock()
			err := bgp.WriteMessage(s.conn, bgp.Keepalive{})
			s.writeMu.Unlock()
			if err != nil {
				s.fail(fmt.Errorf("bgpd: keepalive: %w", err))
				return
			}
		}
	}
}
