package bgpd

import (
	"net"
	"testing"
	"time"

	"swift/internal/bgp"
	"swift/internal/netaddr"
)

// pair establishes two sessions over an in-memory connection.
func pair(t *testing.T, a, b Config) (*Session, *Session) {
	t.Helper()
	c1, c2 := net.Pipe()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(c1, a)
		ch <- res{s, err}
	}()
	sb, err := Establish(c2, b)
	if err != nil {
		t.Fatalf("passive establish: %v", err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatalf("active establish: %v", ra.err)
	}
	t.Cleanup(func() {
		ra.s.Close()
		sb.Close()
	})
	return ra.s, sb
}

func TestHandshake(t *testing.T) {
	a, b := pair(t,
		Config{LocalAS: 65001, RouterID: 1, HoldTime: 30 * time.Second},
		Config{LocalAS: 65002, RouterID: 2, HoldTime: 90 * time.Second},
	)
	if a.State() != StateEstablished || b.State() != StateEstablished {
		t.Fatalf("states = %v, %v", a.State(), b.State())
	}
	if a.PeerAS() != 65002 || b.PeerAS() != 65001 {
		t.Errorf("peer AS = %d, %d", a.PeerAS(), b.PeerAS())
	}
	if a.PeerID() != 2 || b.PeerID() != 1 {
		t.Errorf("peer ID = %d, %d", a.PeerID(), b.PeerID())
	}
	// Hold time negotiation: minimum of the proposals.
	if a.HoldTime() != 30*time.Second || b.HoldTime() != 30*time.Second {
		t.Errorf("hold = %v, %v, want 30s both", a.HoldTime(), b.HoldTime())
	}
}

func TestFourByteASNegotiation(t *testing.T) {
	a, b := pair(t,
		Config{LocalAS: 400001, RouterID: 1},
		Config{LocalAS: 65002, RouterID: 2},
	)
	if b.PeerAS() != 400001 {
		t.Errorf("4-byte peer AS = %d, want 400001", b.PeerAS())
	}
	if a.PeerAS() != 65002 {
		t.Errorf("peer AS = %d", a.PeerAS())
	}
}

func TestUpdateExchange(t *testing.T) {
	a, b := pair(t,
		Config{LocalAS: 65001, RouterID: 1},
		Config{LocalAS: 65002, RouterID: 2},
	)
	sent := &bgp.Update{
		Attrs: bgp.Attrs{
			ASPath:     []uint32{65001, 65100},
			HasNextHop: true,
			NextHop:    0x0a000001,
		},
		NLRI: []netaddr.Prefix{netaddr.MustParsePrefix("192.0.2.0/24")},
	}
	if err := a.Send(sent); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-b.Updates():
		if len(got.NLRI) != 1 || got.NLRI[0] != sent.NLRI[0] {
			t.Errorf("received NLRI = %v", got.NLRI)
		}
		if len(got.Attrs.ASPath) != 2 || got.Attrs.ASPath[0] != 65001 {
			t.Errorf("received path = %v", got.Attrs.ASPath)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("update not delivered")
	}
}

func TestWithdrawalBurstDelivery(t *testing.T) {
	a, b := pair(t,
		Config{LocalAS: 65001, RouterID: 1},
		Config{LocalAS: 65002, RouterID: 2},
	)
	var prefixes []netaddr.Prefix
	for i := 0; i < 2000; i++ {
		prefixes = append(prefixes, netaddr.BlockFor(uint32(1+i/250), i%250))
	}
	msgs := bgp.PackWithdrawals(prefixes)
	go func() {
		for _, m := range msgs {
			if err := a.Send(m); err != nil {
				return
			}
		}
	}()
	received := 0
	timeout := time.After(10 * time.Second)
	for received < 2000 {
		select {
		case u := <-b.Updates():
			received += len(u.Withdrawn)
		case <-timeout:
			t.Fatalf("received %d of 2000 withdrawals", received)
		}
	}
}

func TestCleanCloseDeliversCease(t *testing.T) {
	a, b := pair(t,
		Config{LocalAS: 65001, RouterID: 1},
		Config{LocalAS: 65002, RouterID: 2},
	)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("peer did not observe close")
	}
	if err := b.Err(); err != nil {
		t.Errorf("clean cease should not be an error, got %v", err)
	}
	if err := a.Send(&bgp.Update{}); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestHoldTimerExpiry(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(c1, Config{LocalAS: 65001, RouterID: 1, HoldTime: 3 * time.Second})
		ch <- res{s, err}
	}()
	// Handshake manually on c2, then go silent: no keepalives.
	open := &bgp.Open{AS: 65002, HoldTime: 3, RouterID: 2}
	if err := bgp.WriteMessage(c2, open); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bgp.ReadMessage(c2); err != nil { // their OPEN
		t.Fatal(err)
	}
	if err := bgp.WriteMessage(c2, bgp.Keepalive{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bgp.ReadMessage(c2); err != nil { // their KEEPALIVE
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.s.Close()
	// Drain whatever the session writes (keepalives, then the hold-timer
	// NOTIFICATION) so its writes don't block on the unbuffered pipe.
	go func() {
		for {
			if _, _, err := bgp.ReadMessage(c2); err != nil {
				return
			}
		}
	}()
	select {
	case <-r.s.Done():
		if r.s.Err() == nil {
			t.Error("hold expiry must surface an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hold timer did not fire")
	}
}

func TestDialAccept(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Accept(l, Config{LocalAS: 65002, RouterID: 2})
		ch <- res{s, err}
	}()
	active, err := Dial(l.Addr().String(), Config{LocalAS: 65001, RouterID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer active.Close()
	passive := <-ch
	if passive.err != nil {
		t.Fatal(passive.err)
	}
	defer passive.s.Close()
	if active.PeerAS() != 65002 || passive.s.PeerAS() != 65001 {
		t.Errorf("peer AS = %d, %d", active.PeerAS(), passive.s.PeerAS())
	}
}

func TestMalformedUpdateKillsSession(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	type res struct {
		s   *Session
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := Establish(c1, Config{LocalAS: 65001, RouterID: 1})
		ch <- res{s, err}
	}()
	open := &bgp.Open{AS: 65002, HoldTime: 90, RouterID: 2}
	if err := bgp.WriteMessage(c2, open); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bgp.ReadMessage(c2); err != nil {
		t.Fatal(err)
	}
	if err := bgp.WriteMessage(c2, bgp.Keepalive{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bgp.ReadMessage(c2); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	defer r.s.Close()
	go func() {
		for {
			if _, _, err := bgp.ReadMessage(c2); err != nil {
				return
			}
		}
	}()
	// A 6-byte UPDATE body with an impossible withdrawn length.
	raw := make([]byte, bgp.HeaderLen+6)
	for i := 0; i < 16; i++ {
		raw[i] = 0xff
	}
	raw[16] = 0
	raw[17] = byte(bgp.HeaderLen + 6)
	raw[18] = bgp.TypeUpdate
	raw[19], raw[20] = 0xff, 0xff
	if _, err := c2.Write(raw); err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.s.Done():
		if r.s.Err() == nil {
			t.Error("malformed update must surface an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session did not terminate on malformed update")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateIdle: "Idle", StateOpenSent: "OpenSent", StateOpenConfirm: "OpenConfirm",
		StateEstablished: "Established", StateClosed: "Closed", State(99): "unknown",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
