package swift

import (
	"fmt"
	"sort"
	"time"

	"swift/internal/burst"
	"swift/internal/dataplane"
	"swift/internal/encoding"
	"swift/internal/reroute"
	"swift/internal/rib"
	"swift/internal/topology"
)

// EngineState is one session engine's warm-restart image: the primary
// and alternate RIBs (by dense PathID against a pool image restored
// first), the burst detector's adaptive-threshold state, the computed
// plan, the compiled scheme and the provisioned two-stage FIB, plus the
// scalar bookkeeping that ties them together. Everything is in
// canonical order so the same engine state always exports identically.
//
// Deliberately not captured: the inference tracker's in-burst evidence
// and its withdrawn-path pins (a restored engine starts a burst's
// evidence fresh — the snapshot contract is steady state, and a
// mid-burst restore degrades to re-accumulating W(t) from the ongoing
// stream), the decision log, and the deferred/vetoed telemetry
// counters.
type EngineState struct {
	Table rib.TableImage
	Alts  []AltState

	History  burst.HistoryImage
	Detector burst.DetectorImage

	Plan   *reroute.PlanImage
	Scheme *encoding.SchemeImage
	FIB    dataplane.FIBImage

	ProvisionSig  uint64
	HaveProvision bool

	LastWithdrawal time.Duration
	BurstStartAt   time.Duration

	RerouteActive bool
	OwnLinks      []topology.Link
	ExtActive     bool
	ExtLinks      []topology.Link
	ExtEpoch      uint64
}

// AltState is one alternate-neighbor RIB.
type AltState struct {
	Neighbor uint32
	Table    rib.TableImage
}

// ExportState captures the engine. Like every engine accessor it must
// run on (or synchronized with) the applying goroutine.
func (e *Engine) ExportState() EngineState {
	st := EngineState{
		Table:          e.table.Export(),
		History:        e.history.Export(),
		Detector:       e.detector.Export(),
		FIB:            e.fib.Export(),
		ProvisionSig:   e.provisionSig,
		HaveProvision:  e.haveProvision,
		LastWithdrawal: e.lastWithdrawal,
		BurstStartAt:   e.burstStartAt,
		RerouteActive:  e.rerouteActive,
		OwnLinks:       append([]topology.Link(nil), e.ownLinks...),
		ExtActive:      e.extActive,
		ExtLinks:       append([]topology.Link(nil), e.extLinks...),
		ExtEpoch:       e.extEpoch,
	}
	for n, t := range e.alts {
		st.Alts = append(st.Alts, AltState{Neighbor: n, Table: t.Export()})
	}
	sort.Slice(st.Alts, func(i, j int) bool { return st.Alts[i].Neighbor < st.Alts[j].Neighbor })
	if e.plan != nil {
		img := e.plan.Export()
		st.Plan = &img
	}
	if e.scheme != nil {
		img := e.scheme.Export()
		st.Scheme = &img
	}
	return st
}

// RestoreState loads st into a freshly constructed engine (New with the
// same Config, its pool already inside a restore window — Pool.Restore
// ran, PruneUnreferenced pending). Route replay takes the table's path
// references exactly like live announcements, then the tracker is reset
// to discard the link-dirty noise the replay generated; scheme, plan
// and FIB load from their images without recompiling anything.
func (e *Engine) RestoreState(st EngineState) error {
	if e.table.Len() != 0 || len(e.alts) != 0 || e.haveProvision || len(e.decisions) != 0 {
		return fmt.Errorf("swift: restore into a used engine")
	}
	if err := e.table.RestoreRoutes(st.Table); err != nil {
		return err
	}
	for i, a := range st.Alts {
		if i > 0 && a.Neighbor <= st.Alts[i-1].Neighbor {
			return fmt.Errorf("swift: restore: alternate neighbors not ascending at %d", a.Neighbor)
		}
		t := rib.NewWithPool(e.cfg.LocalAS, e.cfg.Pool)
		if err := t.RestoreRoutes(a.Table); err != nil {
			return fmt.Errorf("swift: restore alternate %d: %w", a.Neighbor, err)
		}
		e.alts[a.Neighbor] = t
	}
	// Route replay fired the table's link observer into the tracker;
	// none of that is burst evidence. Reset drops it without touching
	// the tables.
	e.tracker.Reset()
	if err := e.history.Restore(st.History); err != nil {
		return err
	}
	if err := e.detector.Restore(st.Detector); err != nil {
		return err
	}
	if st.Plan != nil {
		plan, err := reroute.RestorePlan(*st.Plan)
		if err != nil {
			return err
		}
		e.plan = plan
	}
	if st.Scheme != nil {
		scheme, err := encoding.RestoreScheme(*st.Scheme)
		if err != nil {
			return err
		}
		if scheme.Stats().TaggedPrefixes != len(st.Scheme.Tags) {
			return fmt.Errorf("swift: restore: scheme tag count mismatch")
		}
		e.scheme = scheme
	}
	fib, err := dataplane.Restore(dataplane.Config{RuleUpdateCost: e.cfg.RuleUpdateCost}, st.FIB)
	if err != nil {
		return err
	}
	e.fib = fib
	e.provisionSig = st.ProvisionSig
	e.haveProvision = st.HaveProvision
	e.lastWithdrawal = st.LastWithdrawal
	e.burstStartAt = st.BurstStartAt
	e.rerouteActive = st.RerouteActive
	e.ownLinks = append(e.ownLinks[:0], st.OwnLinks...)
	e.extActive = st.ExtActive
	e.extLinks = append(e.extLinks[:0], st.ExtLinks...)
	e.extEpoch = st.ExtEpoch
	return nil
}
