package swift

import (
	"testing"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/burst"
	"swift/internal/inference"
	"swift/internal/netaddr"
	"swift/internal/topology"
)

// fig1Engine builds a provisioned engine for AS 1's session with AS 2
// at the given per-origin scale, loading alternates from AS 3 and 4 out
// of the simulator's ground-truth routing.
func fig1Engine(t *testing.T, scale int, useHistory bool) (*Engine, *bgpsim.Network) {
	t.Helper()
	net := bgpsim.Fig1Network(scale)
	sols := net.Solve(net.Graph)

	cfg := Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference = inference.Default()
	cfg.Inference.UseHistory = useHistory
	// Scale-dependent trigger so tests at small scale still exercise
	// several inference rounds.
	cfg.Inference.TriggerEvery = scale / 4
	if cfg.Inference.TriggerEvery < 10 {
		cfg.Inference.TriggerEvery = 10
	}
	cfg.Encoding.MinPrefixes = scale / 10
	cfg.Burst = burst.Config{StartThreshold: scale / 10, StopThreshold: 9}
	e := New(cfg)

	for origin := range net.Origins {
		for neighbor, table := range map[uint32]bool{2: true, 3: false, 4: false} {
			_ = table
			r, ok := sols[origin].ExportTo(net.Graph, net.Policy, neighbor, 1)
			if !ok {
				continue
			}
			for i := 0; i < net.Origins[origin]; i++ {
				p := netaddr.PrefixFor(origin, i)
				if neighbor == 2 {
					e.LearnPrimary(p, r.Path)
				} else {
					e.LearnAlternate(neighbor, p, r.Path)
				}
			}
		}
	}
	if err := e.Provision(); err != nil {
		t.Fatal(err)
	}
	return e, net
}

func playBurst(e *Engine, b *bgpsim.Burst) {
	for _, ev := range b.Events {
		if ev.Kind == bgpsim.KindWithdraw {
			e.ObserveWithdraw(ev.At, ev.Prefix)
		} else {
			e.ObserveAnnounce(ev.At, ev.Prefix, ev.Path)
		}
	}
	e.Tick(b.Duration() + time.Minute)
}

func TestEngineEndToEndFig1(t *testing.T) {
	e, net := fig1Engine(t, 1000, false)
	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(5))
	if err != nil {
		t.Fatal(err)
	}

	// Pre-failure: packets for S8 leave via AS 2.
	if nh, ok := e.FIB().ForwardPrefix(netaddr.PrefixFor(8, 0)); !ok || nh != 2 {
		t.Fatalf("pre-failure forward = %d, %v; want 2", nh, ok)
	}

	playBurst(e, b)

	if len(e.Decisions()) == 0 {
		t.Fatal("no inference decision on an 1100-withdrawal burst")
	}
	// Early decisions may blame links adjacent to the failure (the
	// paper's §6.2.2 reports exactly this for 91% of early inferences);
	// every decision must at least touch the failed link's endpoints,
	// and the final one must pin (5,6) itself.
	for i, d := range e.Decisions() {
		touches := false
		for _, l := range d.Result.Links {
			if l.Has(5) || l.Has(6) {
				touches = true
			}
		}
		if !touches {
			t.Errorf("decision %d links %v unrelated to the failure", i, d.Result.Links)
		}
	}
	last := e.Decisions()[len(e.Decisions())-1]
	foundFailed := false
	for _, l := range last.Result.Links {
		if l == topology.MakeLink(5, 6) {
			foundFailed = true
		}
	}
	if !foundFailed {
		t.Errorf("final inference %v does not include (5,6)", last.Result.Links)
	}
	if last.RulesInstalled == 0 || last.RulesInstalled > 50 {
		t.Errorf("rules installed = %d; want a handful", last.RulesInstalled)
	}
	if last.DataplaneTime > 130*time.Millisecond {
		t.Errorf("data-plane update time %v exceeds the paper's 130ms bound", last.DataplaneTime)
	}
	// After the burst the engine must have fallen back (burst ended).
	if e.RerouteActive() {
		t.Error("reroute must be withdrawn after convergence")
	}
}

func TestEngineReroutesDuringBurst(t *testing.T) {
	e, net := fig1Engine(t, 1000, false)
	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(5))
	if err != nil {
		t.Fatal(err)
	}
	// Feed most of the burst (enough for the inference to converge on
	// the failed link — early triggers blame the adjacent, S8-heavy
	// (6,8) first, as in §6.2.2), then inspect the FIB mid-flight.
	cut := len(b.Events) * 95 / 100
	for _, ev := range b.Events[:cut] {
		if ev.Kind == bgpsim.KindWithdraw {
			e.ObserveWithdraw(ev.At, ev.Prefix)
		} else {
			e.ObserveAnnounce(ev.At, ev.Prefix, ev.Path)
		}
	}
	if !e.RerouteActive() {
		t.Fatal("reroute should be active mid-burst")
	}
	// A not-yet-withdrawn S8 prefix must now leave via AS 3 (the only
	// (5,6)-free neighbor), not via the blackholed AS 2 path.
	var survivor netaddr.Prefix
	for i := net.Origins[8] - 1; i >= 0; i-- {
		p := netaddr.PrefixFor(8, i)
		if e.RIB().Path(p) != nil {
			survivor = p
			break
		}
	}
	if survivor == netaddr.Invalid {
		t.Skip("all of S8 already withdrawn at the cut point")
	}
	nh, ok := e.FIB().ForwardPrefix(survivor)
	if !ok {
		t.Fatal("survivor prefix dropped")
	}
	if nh != 3 {
		t.Errorf("survivor forwarded to %d, want backup 3", nh)
	}
}

func TestEngineLearningTimeAdvantage(t *testing.T) {
	// Fig. 8's mechanism: SWIFT "learns" predicted prefixes at decision
	// time, far before their withdrawals arrive.
	e, net := fig1Engine(t, 1000, false)
	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(5))
	if err != nil {
		t.Fatal(err)
	}
	playBurst(e, b)
	if len(e.Decisions()) == 0 {
		t.Fatal("no decisions")
	}
	d := e.Decisions()[0]
	if d.At >= b.Duration() {
		t.Errorf("decision at %v is not earlier than the burst end %v", d.At, b.Duration())
	}
	if len(d.Predicted) == 0 {
		t.Error("decision predicted nothing")
	}
}

func TestEngineHistoryGateDefersEarlyLargePredictions(t *testing.T) {
	// With history on and a trigger bracket demanding confirmation, the
	// first inference of a huge predicted set must be deferred.
	e, net := fig1Engine(t, 1000, true)
	// Tighten the plausibility: nothing below 10k received is plausible
	// if it predicts more than 50 prefixes.
	e.cfg.Inference.Plausibility = []inference.PlausibilityRule{
		{Received: 10000, MaxPredicted: 50},
	}
	e.cfg.Inference.AcceptAlways = 1 << 30
	e.tracker = inference.NewTracker(e.cfg.Inference, e.table)

	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(5))
	if err != nil {
		t.Fatal(err)
	}
	playBurst(e, b)
	if e.Deferred() == 0 {
		t.Error("expected deferred inferences under the strict gate")
	}
	if len(e.Decisions()) != 0 {
		t.Error("no decision should pass a gate requiring 10k received")
	}
}

func TestEngineNoiseDoesNotTrigger(t *testing.T) {
	e, _ := fig1Engine(t, 1000, false)
	// Sparse background withdrawals (1 per minute) must never trigger.
	for i := 0; i < 50; i++ {
		e.ObserveWithdraw(time.Duration(i)*time.Minute, netaddr.PrefixFor(8, i))
	}
	if len(e.Decisions()) != 0 || e.RerouteActive() {
		t.Error("background noise caused a reroute")
	}
	// Stale-noise reset: the tracker must not have accumulated all 50.
	if got := e.tracker.Received(); got > 2 {
		t.Errorf("tracker accumulated %d stale withdrawals", got)
	}
}

func TestEngineFallbackRestoresPrimary(t *testing.T) {
	e, net := fig1Engine(t, 1000, false)
	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(5))
	if err != nil {
		t.Fatal(err)
	}
	playBurst(e, b)
	// S7 converged onto the new path via 2; after fallback the FIB must
	// follow BGP again (rules at reroute priority are gone).
	if e.FIB().NumRules() == 0 {
		t.Fatal("FIB has no rules after fallback")
	}
	nh, ok := e.FIB().ForwardPrefix(netaddr.PrefixFor(7, 0))
	if !ok {
		t.Fatal("S7 dropped after convergence")
	}
	if nh != 2 {
		t.Errorf("S7 forwarded to %d after fallback, want primary 2", nh)
	}
}
