// Package swift implements the SWIFT engine — the paper's core
// contribution assembled from its parts (§3's workflow): it consumes a
// BGP session's event stream, maintains the session RIB, detects
// withdrawal bursts, runs the inference algorithm at the adaptive
// triggers, and installs tag-based reroute rules into the two-stage
// forwarding table, falling back to BGP's own routes once the burst is
// over and BGP has reconverged.
//
// One Engine serves one BGP session; a router runs one engine per
// session, in parallel, exactly as §4.1 prescribes. The engine is a
// stream sink: feeds deliver ordered event.Batches through Apply, and
// live consumers subscribe to the Observer hooks instead of polling.
package swift

import (
	"errors"
	"time"

	"swift/internal/burst"
	"swift/internal/dataplane"
	"swift/internal/encoding"
	"swift/internal/event"
	"swift/internal/fusion"
	"swift/internal/inference"
	"swift/internal/netaddr"
	"swift/internal/reroute"
	"swift/internal/rib"
	"swift/internal/topology"
)

// FusionGate is the engine's hook into a fleet-level evidence-fusion
// layer (internal/fusion). When configured, every accepted inference is
// offered as a Proposal before its rules are installed; a veto defers
// the reroute (the fleet holds materially stronger, disjoint evidence).
// Propose is called at decision points only — never on the per-event
// hot path — and runs synchronously on the applying goroutine.
type FusionGate interface {
	Propose(p fusion.Proposal) fusion.Answer
}

// Config assembles the engine's tunables. Zero values select the
// paper's defaults everywhere.
type Config struct {
	// LocalAS is the SWIFTED router's AS number.
	LocalAS uint32
	// PrimaryNeighbor is the session peer whose routes the router
	// currently prefers (AS 2 in Fig. 1).
	PrimaryNeighbor uint32
	// Inference, Encoding and Burst carry the per-algorithm settings.
	Inference inference.Config
	Encoding  encoding.Config
	Burst     burst.Config
	// ReroutePolicy is the operator's backup-selection policy.
	ReroutePolicy *reroute.Policy
	// Pool is the path/link intern pool backing every RIB the engine
	// owns (primary and alternates). Nil selects a private pool; a
	// Fleet passes one shared pool so peers announcing overlapping
	// paths store each path once.
	Pool *rib.Pool
	// RuleUpdateCost models the FIB write latency.
	RuleUpdateCost time.Duration
	// DisableProvisionSkip turns off the RIB-signature fast path that
	// skips burst-end re-provisioning when BGP reconverged onto exactly
	// the provisioned routes. Equivalence tests force the full recompile
	// through this to pin that the skip never changes FIB contents.
	DisableProvisionSkip bool
	// Fusion, when set, offers every accepted inference to a fleet-level
	// evidence-fusion gate before acting on it, and lets the fleet apply
	// externally-confirmed verdicts via ApplyExternal. Nil (the default)
	// keeps pure per-peer behavior.
	Fusion FusionGate
	// Observer receives push notifications at the engine's lifecycle
	// points (burst start/end, decisions, provisioning).
	Observer Observer
	// Metrics carries pre-resolved telemetry handles. The zero value
	// disables instrumentation; see Metrics for the hot-path contract.
	Metrics Metrics
	// Logf, when set, receives one line per engine decision.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	// Per-field inference defaulting, so callers can override one knob
	// without zeroing the rest (the encoding block below set the
	// pattern). UseHistory is a bool whose false value is meaningful,
	// so it only takes the paper's default when the whole block was
	// left untouched.
	idef := inference.Default()
	inf := &c.Inference
	untouched := inf.WWS <= 0 && inf.WPS <= 0 && inf.TriggerEvery <= 0 &&
		inf.AcceptAlways <= 0 && inf.Plausibility == nil && inf.TieEpsilon <= 0
	if inf.WWS <= 0 {
		inf.WWS = idef.WWS
	}
	if inf.WPS <= 0 {
		inf.WPS = idef.WPS
	}
	if inf.TriggerEvery <= 0 {
		inf.TriggerEvery = idef.TriggerEvery
	}
	if inf.AcceptAlways <= 0 {
		inf.AcceptAlways = idef.AcceptAlways
	}
	if inf.Plausibility == nil {
		inf.Plausibility = idef.Plausibility
	}
	if inf.TieEpsilon <= 0 {
		inf.TieEpsilon = idef.TieEpsilon
	}
	if untouched {
		inf.UseHistory = inf.UseHistory || idef.UseHistory
	}
	// Per-field encoding defaults so callers can override one knob.
	def := encoding.Default()
	if c.Encoding.TagBits == 0 {
		c.Encoding.TagBits = def.TagBits
	}
	if c.Encoding.PathBits == 0 {
		c.Encoding.PathBits = def.PathBits
	}
	if c.Encoding.MaxDepth == 0 {
		c.Encoding.MaxDepth = def.MaxDepth
	}
	if c.Encoding.MinPrefixes == 0 {
		c.Encoding.MinPrefixes = def.MinPrefixes
	}
	if c.Encoding.NHBits == 0 {
		c.Encoding.NHBits = def.NHBits
	}
	return c
}

// Decision records one accepted inference and the data-plane action it
// triggered.
type Decision struct {
	// At is the stream offset when the inference ran.
	At time.Duration
	// Result is the raw inference outcome.
	Result inference.Result
	// Predicted lists the prefixes the rules divert (a snapshot of the
	// RIB's coverage of the inferred links at decision time).
	Predicted []netaddr.Prefix
	// RulesInstalled counts the stage-2 writes performed.
	RulesInstalled int
	// DataplaneTime is the modeled FIB update latency for those writes.
	DataplaneTime time.Duration
	// InferLatency is the wall-clock time the inference computation
	// took — the engine-side half of the paper's reaction-time budget.
	InferLatency time.Duration
	// External marks a decision applied from a fleet-level fused verdict
	// (ApplyExternal) rather than this session's own inference. External
	// decisions must not be re-offered as fusion evidence.
	External bool
	// WithdrawnStart splits Predicted: Predicted[:WithdrawnStart] are
	// prefixes still routed across the links at decision time,
	// Predicted[WithdrawnStart:] were already withdrawn on the session.
	// External decisions carry only corroborated-withdrawn prefixes, so
	// theirs is 0.
	WithdrawnStart int
}

// ProvisionInfo describes one successful Provision pass.
type ProvisionInfo struct {
	// At is the stream offset of a burst-end re-provision; zero for the
	// initial out-of-band provisioning.
	At time.Duration
	// Fallback is true when the pass re-derived the plan against the
	// converged RIB after a burst ended (§3's fallback).
	Fallback bool
	// Unchanged is true when a fallback pass found the RIBs carrying
	// exactly the provisioned routes again (BGP reconverged onto the
	// pre-burst state, the common case for transient failures) and kept
	// the existing plan, tags and FIB state instead of recompiling.
	Unchanged bool
	// TaggedPrefixes, PathBitsUsed, EncodedLinks and NextHops summarize
	// the compiled encoding.
	TaggedPrefixes int
	PathBitsUsed   int
	EncodedLinks   int
	NextHops       int
}

// Observer is the engine's push-notification surface. Each hook, when
// non-nil, is called synchronously on the goroutine applying the stream
// — hooks must be fast and must not call back into the engine. It
// replaces log-line scraping and Decisions() polling for live
// consumers.
type Observer struct {
	// OnBurstStart fires when the detector opens a burst.
	OnBurstStart func(at time.Duration, withdrawals int)
	// OnDecision fires for every accepted inference, right after its
	// rules hit the data plane.
	OnDecision func(d Decision)
	// OnBurstEnd fires when the detector closes a burst, before the
	// engine falls back to BGP's converged routes. received is the
	// burst's total withdrawal count.
	OnBurstEnd func(at time.Duration, received int)
	// OnProvision fires after every successful Provision pass — the
	// initial one and every burst-end fallback re-provision.
	OnProvision func(info ProvisionInfo)
}

// Engine is the per-session SWIFT pipeline.
type Engine struct {
	cfg      Config
	table    *rib.Table
	alts     map[uint32]*rib.Table
	tracker  *inference.Tracker
	history  *burst.History
	detector *burst.Detector
	plan     *reroute.Plan
	scheme   *encoding.Scheme
	fib      *dataplane.FIB

	// triggerEvery caches cfg.Inference.TriggerEvery (always positive
	// after withDefaults) off the per-withdrawal path.
	triggerEvery int
	// shim backs the deprecated Observe* wrappers with an allocation-
	// free one-event batch. The engine is single-goroutine by contract,
	// so reuse is safe.
	shim [1]event.Event

	lastWithdrawal time.Duration
	lastTriggerAt  int // tracker count at the previous inference attempt
	burstStartAt   time.Duration
	rerouteActive  bool
	decisions      []Decision
	deferred       int // inferences rejected by the plausibility gate
	vetoed         int // inferences deferred by the fusion conflict gate

	// Fusion state: ownLinks are the links of the engine's own current
	// reroute (nil when the active rules are external-only); extLinks the
	// fleet verdict's links when externally applied; extEpoch the last
	// verdict epoch seen (0 = none), so repeated pump publications of an
	// unchanged verdict are no-ops.
	ownLinks  []topology.Link
	extLinks  []topology.Link
	extActive bool
	extEpoch  uint64

	// provisionSig memoizes the RIB-content signature the current plan
	// and tags were compiled from; a burst-end fallback whose RIBs carry
	// that signature again skips the recompilation outright.
	provisionSig  uint64
	haveProvision bool
}

// Engine is a stream sink.
var _ event.Sink = (*Engine)(nil)

// New builds an engine. Routes must then be loaded with LearnPrimary /
// LearnAlternate, followed by one Provision call before streaming.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	if cfg.Pool == nil {
		cfg.Pool = rib.NewPool()
	}
	e := &Engine{
		cfg:          cfg,
		table:        rib.NewWithPool(cfg.LocalAS, cfg.Pool),
		alts:         make(map[uint32]*rib.Table),
		history:      &burst.History{},
		fib:          dataplane.New(dataplane.Config{RuleUpdateCost: cfg.RuleUpdateCost}),
		triggerEvery: cfg.Inference.TriggerEvery,
	}
	e.tracker = inference.NewTracker(cfg.Inference, e.table)
	e.detector = burst.NewDetector(cfg.Burst, e.history)
	return e
}

// LearnPrimary installs a route on the primary session RIB (initial
// table transfer).
func (e *Engine) LearnPrimary(p netaddr.Prefix, path []uint32) {
	e.table.Announce(p, path)
}

// LearnAlternate installs a route offered by another neighbor (or a
// remote iBGP next-hop) — the pool backups are drawn from.
func (e *Engine) LearnAlternate(neighbor uint32, p netaddr.Prefix, path []uint32) {
	t := e.alts[neighbor]
	if t == nil {
		t = rib.NewWithPool(e.cfg.LocalAS, e.cfg.Pool)
		e.alts[neighbor] = t
	}
	t.Announce(p, path)
}

// Provision computes the backup plan and tag encoding from the current
// RIBs and fills both forwarding stages — the "before the outage" half
// of Fig. 3. It must be called after the initial routes are loaded and
// may be called again after BGP reconverges.
func (e *Engine) Provision() error { return e.provision(0, false) }

func (e *Engine) provision(at time.Duration, fallback bool) error {
	sig := e.table.Signature()
	for n, alt := range e.alts {
		sig ^= rib.SigMix(alt.Signature() ^ uint64(n))
	}
	if fallback && !e.cfg.DisableProvisionSkip && e.haveProvision && sig == e.provisionSig && e.scheme != nil {
		// BGP reconverged onto exactly the provisioned routes (the
		// transient-failure common case): the plan, tags and FIB state
		// all still hold. Report the pass without recompiling. The
		// accounting reset matches the recompiled path — post-fallback,
		// Writes/Elapsed measure the next failure reaction only.
		e.fib.ResetAccounting()
		stats := e.scheme.Stats()
		e.cfg.Metrics.Provisions.Inc()
		e.cfg.Metrics.ProvisionsUnchanged.Inc()
		e.logf("re-provision skipped: RIB reconverged onto provisioned state (%d prefixes tagged)",
			stats.TaggedPrefixes)
		if e.cfg.Observer.OnProvision != nil {
			e.cfg.Observer.OnProvision(ProvisionInfo{
				At:             at,
				Fallback:       true,
				Unchanged:      true,
				TaggedPrefixes: stats.TaggedPrefixes,
				PathBitsUsed:   stats.PathBitsUsed,
				EncodedLinks:   stats.EncodedLinks,
				NextHops:       stats.NextHops,
			})
		}
		return nil
	}
	e.plan = reroute.Compute(e.cfg.LocalAS, e.table, e.alts, e.cfg.ReroutePolicy, e.cfg.Encoding.MaxDepth)
	scheme, err := encoding.Build(e.cfg.Encoding, e.table, e.plan)
	if err != nil {
		return err
	}
	e.scheme = scheme
	// The scheme's tag map is rebuilt per provision; hand it to the FIB
	// wholesale instead of copying entry by entry. The primary rule is
	// replaced, not stacked: a fallback pass re-derives it, and leaving
	// the previous one in stage 2 would grow the table by one duplicate
	// per burst.
	e.fib.ReplaceTags(scheme.Tags())
	e.fib.RemoveRulesAt(primaryPriority)
	if r, ok := scheme.PrimaryRule(e.cfg.PrimaryNeighbor); ok {
		e.fib.InstallRule(r)
	}
	// Provisioning happens in steady state; the accounting should
	// measure failure reactions only.
	e.fib.ResetAccounting()
	e.provisionSig, e.haveProvision = sig, true
	e.cfg.Metrics.Provisions.Inc()
	stats := scheme.Stats()
	e.logf("provisioned: %d prefixes tagged, %d path bits, %d next-hops",
		stats.TaggedPrefixes, stats.PathBitsUsed, stats.NextHops)
	if e.cfg.Observer.OnProvision != nil {
		e.cfg.Observer.OnProvision(ProvisionInfo{
			At:             at,
			Fallback:       fallback,
			TaggedPrefixes: stats.TaggedPrefixes,
			PathBitsUsed:   stats.PathBitsUsed,
			EncodedLinks:   stats.EncodedLinks,
			NextHops:       stats.NextHops,
		})
	}
	return nil
}

// FIB exposes the simulated forwarding table.
func (e *Engine) FIB() *dataplane.FIB { return e.fib }

// RIB exposes the primary session RIB.
func (e *Engine) RIB() *rib.Table { return e.table }

// Pool exposes the path/link intern pool behind the engine's RIBs.
func (e *Engine) Pool() *rib.Pool { return e.cfg.Pool }

// Plan exposes the current backup plan.
func (e *Engine) Plan() *reroute.Plan { return e.plan }

// Scheme exposes the compiled encoding.
func (e *Engine) Scheme() *encoding.Scheme { return e.scheme }

// Decisions returns a snapshot of every accepted inference so far. The
// returned slice is the caller's to keep: it never aliases engine
// state, so it cannot be corrupted by (or race with) later stream
// deliveries.
func (e *Engine) Decisions() []Decision {
	if len(e.decisions) == 0 {
		return nil
	}
	return append([]Decision(nil), e.decisions...)
}

// NumDecisions returns the count of accepted inferences without
// snapshotting them.
func (e *Engine) NumDecisions() int { return len(e.decisions) }

// Deferred returns how many inferences the plausibility gate rejected.
func (e *Engine) Deferred() int { return e.deferred }

// RerouteActive reports whether fast-reroute rules are installed.
func (e *Engine) RerouteActive() bool { return e.rerouteActive }

// Apply consumes one ordered batch of stream events — the engine's
// only hot path; everything else funnels into it. Batching amortizes
// the per-delivery setup (call overhead, config loads, the one-event
// shim churn of the deprecated Observe* wrappers) across the batch, and
// announce events of one UPDATE share a single path slice instead of
// copying per prefix. Per-event semantics are exactly the paper's:
// burst detection, adaptive triggers and fallback fire at the same
// message they would under one-call-per-message delivery, so a batched
// replay and a per-message replay make identical decisions.
//
// The returned error reports burst-end re-provision failures; the
// stream itself is always fully consumed. Engines are single-session
// state machines: Apply must not be called concurrently (wrap the
// engine in a SessionSink, or front it with a Fleet, for concurrent
// feeds).
func (e *Engine) Apply(b event.Batch) error {
	var errs []error
	var wd, ann uint64
	for i := range b {
		ev := &b[i]
		switch ev.Kind {
		case event.KindWithdraw:
			wd++
			e.observeWithdraw(ev.At, ev.Prefix)
		case event.KindAnnounce:
			ann++
			if err := e.observeAnnounce(ev.At, ev.Prefix, ev.Path); err != nil {
				errs = append(errs, err)
			}
		case event.KindTick:
			if e.detector.Tick(ev.At) == burst.Ended {
				if err := e.endBurst(ev.At); err != nil {
					errs = append(errs, err)
				}
			}
		}
	}
	// Telemetry flush: the local tallies become one atomic add per
	// event kind per batch (handles are nil-safe), keeping the
	// steady-state path allocation-free and branch-cheap.
	if wd > 0 {
		e.cfg.Metrics.Withdrawals.Add(wd)
	}
	if ann > 0 {
		e.cfg.Metrics.Announcements.Add(ann)
	}
	return errors.Join(errs...)
}

// ObserveWithdraw feeds one withdrawal from the session at stream
// offset at.
//
// Deprecated: deliver event.Batches through Apply. Per-call delivery
// pays the batch setup on every message.
func (e *Engine) ObserveWithdraw(at time.Duration, p netaddr.Prefix) {
	e.shim[0] = event.Withdraw(at, p)
	e.Apply(e.shim[:])
}

// ObserveAnnounce feeds one announcement from the session.
//
// Deprecated: deliver event.Batches through Apply. Per-call delivery
// pays the batch setup on every message.
func (e *Engine) ObserveAnnounce(at time.Duration, p netaddr.Prefix, path []uint32) {
	e.shim[0] = event.Announce(at, p, path)
	e.Apply(e.shim[:])
}

// Tick advances time without a message (timer-driven), closing bursts
// whose window drained.
//
// Deprecated: deliver event.Batches through Apply. Per-call delivery
// pays the batch setup on every message.
func (e *Engine) Tick(at time.Duration) {
	e.shim[0] = event.Tick(at)
	e.Apply(e.shim[:])
}

// observeWithdraw processes one withdrawal event.
func (e *Engine) observeWithdraw(at time.Duration, p netaddr.Prefix) {
	// A lone withdrawal long after the last one is background noise:
	// drop stale burst state so W(t) reflects the current event.
	if e.detector.State() == burst.Quiet && e.tracker.Received() > 0 &&
		at-e.lastWithdrawal > 2*burst.DefaultWindow {
		e.tracker.Reset()
	}
	e.lastWithdrawal = at
	e.tracker.ObserveWithdraw(p)
	tr := e.detector.ObserveWithdrawal(at)
	if tr == burst.Started {
		e.burstStartAt = at
		e.cfg.Metrics.BurstsStarted.Inc()
		e.logf("burst started at %v with %d withdrawals in window", at, e.detector.BurstCount())
		if e.cfg.Observer.OnBurstStart != nil {
			e.cfg.Observer.OnBurstStart(at, e.detector.BurstCount())
		}
	}
	if e.detector.State() == burst.InBurst {
		e.maybeInfer(at)
	}
}

// observeAnnounce processes one announcement event.
func (e *Engine) observeAnnounce(at time.Duration, p netaddr.Prefix, path []uint32) error {
	e.tracker.ObserveAnnounce(p, path)
	if e.detector.Tick(at) == burst.Ended {
		return e.endBurst(at)
	}
	return nil
}

// maybeInfer runs the inference at the adaptive trigger points.
func (e *Engine) maybeInfer(at time.Duration) {
	if e.tracker.Received()-e.lastTriggerAt < e.triggerEvery {
		return
	}
	e.lastTriggerAt = e.tracker.Received()
	// Inference runs only at trigger points (every TriggerEvery
	// withdrawals inside a burst), so the pair of clock reads is off the
	// steady-state path.
	start := time.Now()
	res := e.tracker.Infer()
	lat := time.Since(start)
	e.cfg.Metrics.InferLatency.Observe(lat.Seconds())
	if len(res.Links) == 0 {
		return
	}
	if !res.Accepted {
		e.deferred++
		e.cfg.Metrics.InferencesDeferred.Inc()
		e.logf("inference deferred at %v: predicted %d too large for %d received",
			at, res.Predicted, res.Received)
		return
	}
	e.applyReroute(at, res, lat)
}

// applyReroute installs the tag rules for an accepted inference.
func (e *Engine) applyReroute(at time.Duration, res inference.Result, inferLat time.Duration) {
	if e.scheme == nil {
		return
	}
	// The rules match tags, and stage-1 tags persist through the burst:
	// prefixes already withdrawn in the control plane are diverted too,
	// so the covered set is the union of still-active and withdrawn
	// prefixes crossing the inferred links. Each half deduplicates
	// internally and no sort is needed on the hot path; a prefix
	// withdrawn then re-announced across the links can appear in both
	// halves (as it always could).
	predicted := e.tracker.AppendPredicted(nil, res.Links)
	wStart := len(predicted)
	predicted = e.tracker.AppendWithdrawnOn(predicted, res.Links)
	if e.cfg.Fusion != nil {
		// Offer the inference as fleet evidence; a veto means another
		// in-burst vantage currently holds materially stronger, disjoint
		// evidence, so acting on this one would likely divert the wrong
		// link's prefixes. The evidence is recorded either way.
		ans := e.cfg.Fusion.Propose(fusion.Proposal{
			At:        at,
			Links:     res.Links,
			FS:        res.FS,
			Received:  res.Received,
			Withdrawn: predicted[wStart:],
		})
		e.cfg.Metrics.FusionProposals.Inc()
		if !ans.Act {
			e.vetoed++
			e.cfg.Metrics.FusionVetoed.Inc()
			e.logf("reroute vetoed at %v: links %v fs %.3f conflicts with fleet evidence fs %.3f",
				at, res.Links, res.FS, ans.ConflictFS)
			return
		}
	}
	before := e.fib.Writes()
	if e.rerouteActive {
		e.fib.RemoveRulesAt(reroutePriority)
	}
	e.ownLinks = append(e.ownLinks[:0], res.Links...)
	rules := e.scheme.RerouteRules(e.ownLinks)
	for i := range rules {
		rules[i].Priority = reroutePriority
	}
	e.fib.InstallRules(rules)
	e.rerouteActive = true
	d := Decision{
		At:             at,
		Result:         res,
		Predicted:      predicted,
		WithdrawnStart: wStart,
		RulesInstalled: e.fib.Writes() - before,
		InferLatency:   inferLat,
	}
	d.DataplaneTime = time.Duration(d.RulesInstalled) * dataplaneCost(e.cfg.RuleUpdateCost)
	e.decisions = append(e.decisions, d)
	e.cfg.Metrics.Decisions.Inc()
	e.cfg.Metrics.RulesInstalled.Add(uint64(d.RulesInstalled))
	e.logf("reroute at %v: links %v, %d prefixes predicted, %d rules (%v)",
		at, res.Links, len(d.Predicted), d.RulesInstalled, d.DataplaneTime)
	if e.cfg.Observer.OnDecision != nil {
		e.cfg.Observer.OnDecision(d)
	}
}

func dataplaneCost(c time.Duration) time.Duration {
	if c <= 0 {
		return dataplane.DefaultRuleUpdate
	}
	return c
}

// linksCovered reports whether every link of needles is in haystack.
func linksCovered(needles, haystack []topology.Link) bool {
	for _, n := range needles {
		found := false
		for _, h := range haystack {
			if h == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ApplyExternal installs fast-reroute rules for a fleet-confirmed
// failed-link set — the fan-out half of evidence fusion. External
// rules live in their own priority tier (ExternalReroutePriority, just
// below the engine's own at ReroutePriority) so a later local
// inference neither churns them nor pays their install cost, and an
// own rule wins wherever the two tiers overlap. The recorded
// prediction is the verdict's corroborated-withdrawn prefixes
// restricted to this session's coverage of the links, NOT the
// session's full speculative crossing set — pre-triggering a lagging
// peer must not inflate its false-positive rate.
//
// Re-publication of an unchanged verdict (same epoch) is a no-op, as is
// a verdict the engine's own rules already cover. Like every mutation,
// it must run on the engine's applying goroutine (a fleet calls it
// under the peer lock).
func (e *Engine) ApplyExternal(v fusion.Verdict) {
	if e.scheme == nil || len(v.Links) == 0 {
		return
	}
	if e.extEpoch == v.Epoch {
		return
	}
	e.extEpoch = v.Epoch
	if e.rerouteActive && linksCovered(v.Links, e.ownLinks) {
		// The engine's own inference already diverts these links. If an
		// earlier, wider verdict left an external tier standing (the
		// fleet walked back a link), retire it — keeping stale rules
		// would divert links nobody confirms anymore.
		if e.extActive {
			e.extActive = false
			e.extLinks = e.extLinks[:0]
			e.fib.RemoveRulesAt(extReroutePriority)
		}
		return
	}
	before := e.fib.Writes()
	if e.extActive {
		e.fib.RemoveRulesAt(extReroutePriority)
	}
	e.extLinks = append(e.extLinks[:0], v.Links...)
	e.extActive = true
	rules := e.scheme.RerouteRules(e.extLinks)
	for i := range rules {
		rules[i].Priority = extReroutePriority
	}
	e.fib.InstallRules(rules)
	// Corroborated prediction: the verdict's withdrawn-somewhere set
	// intersected with the prefixes this session has itself seen
	// withdrawn across the confirmed links — control-plane facts on BOTH
	// ends, never speculation. The session's speculative crossing set is
	// deliberately excluded: scenario bursts withdraw a sample of the
	// crossing prefixes, and predicting the rest here is exactly the
	// false-positive inflation fusion exists to avoid. The installed
	// rules still divert whole links, so flows the prediction undercounts
	// restore through the rule match anyway.
	local := e.tracker.AppendWithdrawnOn(nil, v.Links)
	cover := make(map[netaddr.Prefix]struct{}, len(local))
	for _, p := range local {
		cover[p] = struct{}{}
	}
	predicted := make([]netaddr.Prefix, 0, len(v.Predicted))
	for _, p := range v.Predicted {
		if _, ok := cover[p]; ok {
			predicted = append(predicted, p)
		}
	}
	d := Decision{
		At: v.At,
		Result: inference.Result{
			Links:    append([]topology.Link(nil), v.Links...),
			FS:       v.FS,
			Received: v.Supporters,
			Accepted: true,
		},
		Predicted:      predicted,
		RulesInstalled: e.fib.Writes() - before,
		External:       true,
	}
	d.DataplaneTime = time.Duration(d.RulesInstalled) * dataplaneCost(e.cfg.RuleUpdateCost)
	e.decisions = append(e.decisions, d)
	e.cfg.Metrics.Decisions.Inc()
	e.cfg.Metrics.FusionExternal.Inc()
	e.cfg.Metrics.RulesInstalled.Add(uint64(d.RulesInstalled))
	e.logf("external reroute at %v: links %v (fused fs %.3f, %d supporters), %d prefixes corroborated, %d rules",
		v.At, v.Links, v.FS, v.Supporters, len(predicted), d.RulesInstalled)
	if e.cfg.Observer.OnDecision != nil {
		e.cfg.Observer.OnDecision(d)
	}
}

// ClearExternal retires an externally-applied verdict: the fleet's
// confirmed link set emptied (its supporting bursts ended or were
// retracted). The external tier is removed wholesale; own-inference
// rules, living in their own tier, are untouched.
func (e *Engine) ClearExternal(at time.Duration) error {
	e.extEpoch = 0
	if !e.extActive {
		return nil
	}
	e.extActive = false
	e.extLinks = e.extLinks[:0]
	if e.scheme != nil {
		e.fib.RemoveRulesAt(extReroutePriority)
	}
	return nil
}

// Vetoed returns how many inferences the fusion conflict gate deferred.
func (e *Engine) Vetoed() int { return e.vetoed }

// ExternalActive reports whether an externally-confirmed verdict is
// currently applied.
func (e *Engine) ExternalActive() bool { return e.extActive }

// ReroutePriority is the stage-2 priority of SWIFT's fast-reroute
// rules; fleet-confirmed external verdicts install one notch below at
// ExternalReroutePriority (a fresher local inference wins on overlap),
// and primary rules sit at PrimaryPriority. Exported so evaluation
// harnesses forwarding packets through the FIB can attribute a match to
// the rule class that produced it.
const (
	ReroutePriority         = 10
	ExternalReroutePriority = 9
	PrimaryPriority         = 0
)

// Internal aliases keep the engine's call sites short.
const (
	reroutePriority    = ReroutePriority
	extReroutePriority = ExternalReroutePriority
	primaryPriority    = PrimaryPriority
)

// endBurst is SWIFT's fallback (§3): BGP has converged, the RIB holds
// the post-failure routes, so remove the override rules and re-derive
// the steady-state plan and tags.
func (e *Engine) endBurst(at time.Duration) error {
	received := e.tracker.Received()
	e.cfg.Metrics.BurstsEnded.Inc()
	if d := at - e.burstStartAt; d >= 0 {
		e.cfg.Metrics.BurstDuration.Observe(d.Seconds())
	}
	e.logf("burst ended at %v: %d withdrawals total", at, received)
	if e.cfg.Observer.OnBurstEnd != nil {
		e.cfg.Observer.OnBurstEnd(at, received)
	}
	e.tracker.Reset()
	e.lastTriggerAt = 0
	// Drop fusion state with the burst: the session reconverged, so both
	// its own links and any externally-applied verdict stop mattering
	// here. A still-live fleet verdict re-applies on the next pump.
	e.ownLinks = e.ownLinks[:0]
	e.extLinks = e.extLinks[:0]
	if e.extActive {
		e.fib.RemoveRulesAt(extReroutePriority)
		e.extActive = false
	}
	e.extEpoch = 0
	if e.rerouteActive {
		e.fib.RemoveRulesAt(reroutePriority)
		e.rerouteActive = false
		// Re-provision tags against the converged RIB.
		if err := e.provision(at, true); err != nil {
			e.logf("re-provisioning failed: %v", err)
			return err
		}
	}
	return nil
}

// Release returns every path reference the engine holds to the shared
// pool: the tracker's burst pins, the primary table's routes and the
// alternate tables' routes. It is the session-teardown half of a fleet
// peer's lifecycle — a fleet that disconnects a peer releases its
// engine so the pool's refcounts drain. A released engine must not be
// fed further events.
func (e *Engine) Release() {
	e.tracker.Reset()
	e.table.Release()
	for _, t := range e.alts {
		t.Release()
	}
}

// InferredLinks returns the links of the most recent decision (nil when
// none).
func (e *Engine) InferredLinks() []topology.Link {
	if len(e.decisions) == 0 {
		return nil
	}
	return e.decisions[len(e.decisions)-1].Result.Links
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf("swift: "+format, args...)
	}
}
