package swift

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"swift/internal/burst"
	"swift/internal/encoding"
	"swift/internal/event"
	"swift/internal/inference"
	"swift/internal/netaddr"
)

// TestProvisionSkipEquivalence pins the rib.Table.Signature()-based
// re-provision skip: whenever BGP reconverges onto exactly the
// provisioned routes, the skipping engine must end the burst with
// byte-identical FIB contents to an engine forced to recompile —
// across random interleavings of withdraw / re-announce / path-change
// streams. A divergence here would mean the signature fast path serves
// stale forwarding state. Rounds where some prefixes reconverge onto a
// different path must recompile on both engines (no skip) and still
// agree.
func TestProvisionSkipEquivalence(t *testing.T) {
	type route struct {
		p    netaddr.Prefix
		path []uint32
	}

	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// Primary routes: paths share mid-links so inference has
			// something to find; origins 20..24 via mids 10/11 behind
			// neighbor 1.
			var routes []route
			for origin := uint32(20); origin < 25; origin++ {
				mid := uint32(10 + origin%2)
				for i := 0; i < 12; i++ {
					routes = append(routes, route{
						p:    netaddr.PrefixFor(origin, i),
						path: []uint32{1, mid, origin},
					})
				}
			}

			build := func(disableSkip bool) (*Engine, *int) {
				skips := new(int)
				e := New(Config{
					LocalAS:              100,
					PrimaryNeighbor:      1,
					Inference:            inference.Config{TriggerEvery: 5, UseHistory: false},
					Encoding:             encoding.Config{MinPrefixes: 1},
					Burst:                burst.Config{StartThreshold: 5},
					DisableProvisionSkip: disableSkip,
					Observer: Observer{
						OnProvision: func(info ProvisionInfo) {
							if info.Unchanged {
								*skips++
							}
						},
					},
				})
				for _, r := range routes {
					e.LearnPrimary(r.p, r.path)
				}
				// Alternate neighbor 7 offers a detour for everything.
				for _, r := range routes {
					e.LearnAlternate(7, r.p, []uint32{7, r.path[2]})
				}
				if err := e.Provision(); err != nil {
					t.Fatal(err)
				}
				return e, skips
			}

			for round := 0; round < 6; round++ {
				changed := rng.Intn(2) == 0
				fast, fastSkips := build(false)
				slow, slowSkips := build(true)
				if d1, d2 := fast.FIB().Dump(), slow.FIB().Dump(); d1 != d2 {
					t.Fatalf("initial FIB dumps differ:\n%s\n---\n%s", d1, d2)
				}

				// One burst: withdraw a random subset, then re-announce
				// it — identically (reconvergence onto the provisioned
				// state: the skip must fire) or with a few prefixes on a
				// detour path (real change: both must recompile). The
				// subset stays above the detector's stop threshold (9)
				// so the burst closes at the quiet tick, after the
				// stream has fully reconverged.
				perm := rng.Perm(len(routes))
				k := 12 + rng.Intn(len(routes)-12)
				clock := time.Duration(0)
				var b event.Batch
				for _, idx := range perm[:k] {
					clock += time.Millisecond
					b = append(b, event.Withdraw(clock, routes[idx].p))
				}
				for n, idx := range perm[:k] {
					clock += time.Millisecond
					r := routes[idx]
					path := r.path
					if changed && n < 3 {
						path = []uint32{1, 12, r.path[len(r.path)-1]}
					}
					b = append(b, event.Announce(clock, r.p, path))
				}
				// Quiet time beyond the window closes the burst and
				// triggers the fallback re-provision.
				clock += 2 * burst.DefaultWindow
				b = append(b, event.Tick(clock))

				if err := fast.Apply(b); err != nil {
					t.Fatalf("fast engine: %v", err)
				}
				if err := slow.Apply(b); err != nil {
					t.Fatalf("slow engine: %v", err)
				}

				if fast.NumDecisions() == 0 {
					t.Fatalf("round %d: no reroute decision — burst never exercised the fallback", round)
				}
				if fast.NumDecisions() != slow.NumDecisions() {
					t.Fatalf("round %d: decisions %d vs %d", round, fast.NumDecisions(), slow.NumDecisions())
				}
				if d1, d2 := fast.FIB().Dump(), slow.FIB().Dump(); d1 != d2 {
					t.Fatalf("round %d (changed=%v): FIB dumps diverged\nfast:\n%s\n---\nslow:\n%s",
						round, changed, d1, d2)
				}
				if *slowSkips != 0 {
					t.Errorf("round %d: DisableProvisionSkip engine skipped %d times", round, *slowSkips)
				}
				if changed && *fastSkips != 0 {
					t.Errorf("round %d: skip fired on a changed reconvergence", round)
				}
				if !changed && *fastSkips == 0 {
					t.Errorf("round %d: reconverged onto provisioned state but the skip never fired", round)
				}
			}
		})
	}
}
