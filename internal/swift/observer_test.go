package swift

import (
	"testing"
	"time"

	"swift/internal/bgpsim"
	"swift/internal/event"
	"swift/internal/inference"
	"swift/internal/netaddr"
	"swift/internal/topology"
)

// TestObserverBurstLifecycle drives the full burst lifecycle — start,
// decisions, end, fallback re-provision against the converged RIB —
// and asserts it through the push-based Observer hooks, which replace
// the log-string inspection this path previously required.
func TestObserverBurstLifecycle(t *testing.T) {
	var (
		starts     []time.Duration
		decisions  []Decision
		ends       []time.Duration
		endCounts  []int
		provisions []ProvisionInfo
	)
	obs := Observer{
		OnBurstStart: func(at time.Duration, withdrawals int) {
			starts = append(starts, at)
			if withdrawals <= 0 {
				t.Errorf("OnBurstStart withdrawals = %d", withdrawals)
			}
		},
		OnDecision: func(d Decision) { decisions = append(decisions, d) },
		OnBurstEnd: func(at time.Duration, received int) {
			ends = append(ends, at)
			endCounts = append(endCounts, received)
		},
		OnProvision: func(info ProvisionInfo) { provisions = append(provisions, info) },
	}

	e, net := fig1Engine(t, 1000, false)
	// fig1Engine provisions before we can hook the config, so rewire
	// the observer directly and re-provision to observe the initial
	// pass too.
	e.cfg.Observer = obs
	if err := e.Provision(); err != nil {
		t.Fatal(err)
	}
	if len(provisions) != 1 || provisions[0].Fallback {
		t.Fatalf("initial provision hook: %+v", provisions)
	}
	if provisions[0].TaggedPrefixes == 0 {
		t.Error("initial provision tagged nothing")
	}

	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(5))
	if err != nil {
		t.Fatal(err)
	}
	playBurst(e, b)

	if len(starts) != 1 {
		t.Fatalf("burst starts observed = %d, want 1", len(starts))
	}
	if len(decisions) == 0 {
		t.Fatal("no decisions observed")
	}
	if got := e.Decisions(); len(got) != len(decisions) {
		t.Errorf("observer saw %d decisions, log has %d", len(decisions), len(got))
	}
	if len(ends) != 1 {
		t.Fatalf("burst ends observed = %d, want 1", len(ends))
	}
	if ends[0] <= starts[0] {
		t.Errorf("burst end at %v not after start at %v", ends[0], starts[0])
	}
	if endCounts[0] < b.Size {
		t.Errorf("burst end reported %d withdrawals, want >= %d", endCounts[0], b.Size)
	}

	// The fallback path: burst ended -> reroute rules removed -> the
	// engine re-provisioned against the converged RIB.
	if e.RerouteActive() {
		t.Error("reroute still active after burst end")
	}
	if len(provisions) != 2 {
		t.Fatalf("provision passes observed = %d, want 2 (initial + fallback)", len(provisions))
	}
	fb := provisions[1]
	if !fb.Fallback {
		t.Error("second provision pass not marked Fallback")
	}
	if fb.At != ends[0] {
		t.Errorf("fallback provision at %v, want burst end %v", fb.At, ends[0])
	}
	if fb.TaggedPrefixes == 0 {
		t.Error("fallback provision tagged nothing — not re-derived from the converged RIB")
	}
	// S7 converged onto a surviving path, so the re-derived tags must
	// cover it and the FIB must follow BGP again.
	if nh, ok := e.FIB().ForwardPrefix(netaddr.PrefixFor(7, 0)); !ok || nh != 2 {
		t.Errorf("S7 forwards to %d (ok=%v) after fallback, want primary 2", nh, ok)
	}
}

// TestDecisionsSnapshot pins the aliasing fix: mutating the returned
// slice must not corrupt engine state or later snapshots.
func TestDecisionsSnapshot(t *testing.T) {
	e, net := fig1Engine(t, 1000, false)
	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(5))
	if err != nil {
		t.Fatal(err)
	}
	playBurst(e, b)
	first := e.Decisions()
	if len(first) == 0 {
		t.Fatal("no decisions")
	}
	want := first[0].RulesInstalled
	first[0] = Decision{} // caller scribbles over its snapshot
	second := e.Decisions()
	if second[0].RulesInstalled != want {
		t.Error("mutating a Decisions() snapshot corrupted engine state")
	}
	if e.NumDecisions() != len(second) {
		t.Errorf("NumDecisions = %d, want %d", e.NumDecisions(), len(second))
	}
}

// TestConfigPerFieldInferenceDefaults pins the defaulting fix: setting
// one inference knob must not zero the others' paper defaults.
func TestConfigPerFieldInferenceDefaults(t *testing.T) {
	def := inference.Default()

	// One knob set: every other field still gets its default.
	var cfg Config
	cfg.Inference.WWS = 5
	got := cfg.withDefaults().Inference
	if got.WWS != 5 {
		t.Errorf("WWS = %v, want the override 5", got.WWS)
	}
	if got.WPS != def.WPS || got.TriggerEvery != def.TriggerEvery ||
		got.AcceptAlways != def.AcceptAlways || got.TieEpsilon != def.TieEpsilon {
		t.Errorf("satellite defaults lost: %+v", got)
	}
	if got.Plausibility == nil {
		t.Error("Plausibility not defaulted")
	}
	if got.UseHistory {
		t.Error("UseHistory forced on despite an explicitly-touched block")
	}

	// Untouched block: the full paper defaults, history included.
	got = Config{}.withDefaults().Inference
	if !got.UseHistory || got.WWS != def.WWS || got.TriggerEvery != def.TriggerEvery {
		t.Errorf("zero config did not select the paper defaults: %+v", got)
	}

	// TriggerEvery alone survives (the old all-or-nothing code wiped it
	// back to 2500).
	cfg = Config{}
	cfg.Inference.TriggerEvery = 42
	if got = cfg.withDefaults().Inference; got.TriggerEvery != 42 || got.WWS != def.WWS {
		t.Errorf("TriggerEvery override lost: %+v", got)
	}

	// The engine's hot-path trigger cache honors the default.
	e := New(Config{LocalAS: 1, PrimaryNeighbor: 2})
	if e.triggerEvery != def.TriggerEvery {
		t.Errorf("triggerEvery cache = %d, want %d", e.triggerEvery, def.TriggerEvery)
	}
}

// TestApplyMatchesShims replays the same stream once as event batches
// through Apply and once through the deprecated per-call shims: the
// decisions must be identical — batching changes no paper semantics.
func TestApplyMatchesShims(t *testing.T) {
	mk := func() (*Engine, *bgpsim.Network) { return fig1Engine(t, 1000, false) }
	batched, net := mk()
	perCall, _ := mk()

	b, err := net.ReplayLinkFailure(1, 2, topology.MakeLink(5, 6), bgpsim.DefaultTiming(5))
	if err != nil {
		t.Fatal(err)
	}

	var batch event.Batch
	for _, ev := range b.Events {
		if ev.Kind == bgpsim.KindWithdraw {
			batch = append(batch, event.Withdraw(ev.At, ev.Prefix))
		} else {
			batch = append(batch, event.Announce(ev.At, ev.Prefix, ev.Path))
		}
	}
	batch = append(batch, event.Tick(b.Duration()+time.Minute))
	if err := batched.Apply(batch); err != nil {
		t.Fatal(err)
	}
	playBurst(perCall, b) // Observe* shims + Tick

	dg, dw := batched.Decisions(), perCall.Decisions()
	if len(dg) == 0 || len(dg) != len(dw) {
		t.Fatalf("batched made %d decisions, per-call %d", len(dg), len(dw))
	}
	for i := range dw {
		g, w := dg[i], dw[i]
		if g.At != w.At || g.RulesInstalled != w.RulesInstalled || len(g.Predicted) != len(w.Predicted) {
			t.Errorf("decision %d: batched %+v vs per-call %+v", i, g, w)
		}
		for j := range w.Result.Links {
			if g.Result.Links[j] != w.Result.Links[j] {
				t.Errorf("decision %d link %d: %v vs %v", i, j, g.Result.Links[j], w.Result.Links[j])
			}
		}
	}
}
