package swift

import (
	"sync"

	"swift/internal/event"
	"swift/internal/netaddr"
)

// SessionSink adapts one Engine to the peer-attributed, concurrency-
// safe sink surface that multi-peer sources (a BMP station, a fleet-
// shaped replay) expect. Peer attribution is ignored — every event
// lands on the one engine regardless of which session a source says it
// came from — and a mutex serializes deliveries, so concurrent feed
// goroutines are safe.
//
// It makes the single-session Engine and the collector-scale Fleet
// interchangeable behind the same Source: wire a SessionSink where a
// Fleet would go and the whole stream drives one engine.
type SessionSink struct {
	mu sync.Mutex
	e  *Engine
}

// SessionSink is both a stream sink and a table-transfer target.
var (
	_ event.Sink        = (*SessionSink)(nil)
	_ event.Provisioner = (*SessionSink)(nil)
)

// NewSessionSink wraps an engine.
func NewSessionSink(e *Engine) *SessionSink { return &SessionSink{e: e} }

// Engine returns the wrapped engine. Callers must not drive it
// concurrently with active sources.
func (s *SessionSink) Engine() *Engine { return s.e }

// Apply delivers one batch to the engine under the sink's lock.
func (s *SessionSink) Apply(b event.Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Apply(b)
}

// Learn installs an initial-table route on the primary RIB.
func (s *SessionSink) Learn(_ event.PeerKey, p netaddr.Prefix, path []uint32) {
	s.mu.Lock()
	s.e.LearnPrimary(p, path)
	s.mu.Unlock()
}

// Provisioned reports whether the engine has a compiled encoding.
func (s *SessionSink) Provisioned(event.PeerKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Scheme() != nil
}

// Provision compiles the plan and tag encoding from the loaded tables.
func (s *SessionSink) Provision(event.PeerKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Provision()
}

// Decisions snapshots the engine's decision log under the sink's lock.
func (s *SessionSink) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.Decisions()
}

// Do runs fn with the engine locked — the escape hatch for inspection
// while sources are live. fn must not retain the engine.
func (s *SessionSink) Do(fn func(*Engine)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.e)
}
