package swift

import (
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/fusion"
	"swift/internal/netaddr"
	"swift/internal/telemetry"
)

// benchBurstCycle builds a self-restoring 10k-event burst: 3,000
// withdrawals open a burst and trigger an inference, the same prefixes
// re-announce (BGP reconverging onto a new path), ~4k steady-state
// refreshes drain the window, and a final tick closes the burst so the
// engine falls back and re-provisions. The engine ends every cycle in
// its starting state, so one engine serves every benchmark iteration —
// the timer sees only the pipeline, not setup.
func benchBurstCycle(prefixes []netaddr.Prefix) event.Batch {
	const nEvents = 10000
	const wd = 3000
	batch := make(event.Batch, 0, nEvents)
	at := time.Duration(0)
	for i := 0; i < wd; i++ {
		at += time.Millisecond
		batch = append(batch, event.Withdraw(at, prefixes[i]))
	}
	newPath := []uint32{2, 9, 6} // one shared slice, as a real source emits
	for i := 0; i < wd; i++ {
		at += time.Millisecond
		batch = append(batch, event.Announce(at, prefixes[i], newPath))
	}
	oldPath := []uint32{2, 5, 6}
	for len(batch) < nEvents-1 {
		at += time.Millisecond
		batch = append(batch, event.Announce(at, prefixes[len(batch)%len(prefixes)], oldPath))
	}
	batch = append(batch, event.Tick(at+time.Hour))
	return batch
}

func benchEngine(tb testing.TB, prefixes []netaddr.Prefix) *Engine {
	return benchEngineMetrics(tb, prefixes, Metrics{})
}

func benchEngineMetrics(tb testing.TB, prefixes []netaddr.Prefix, m Metrics) *Engine {
	cfg := Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference.TriggerEvery = 2000
	cfg.Inference.UseHistory = false
	cfg.Burst.StartThreshold = 1500
	cfg.Encoding.MinPrefixes = 1000
	cfg.Metrics = m
	e := New(cfg)
	for _, p := range prefixes {
		e.LearnPrimary(p, []uint32{2, 5, 6})
		e.LearnAlternate(3, p, []uint32{3, 6})
	}
	if err := e.Provision(); err != nil {
		tb.Fatal(err)
	}
	return e
}

// shiftBatch advances every event's stream offset by span so
// back-to-back cycles keep the engine clock monotonic.
func shiftBatch(b event.Batch, span time.Duration) {
	for i := range b {
		b[i].At += span
	}
}

// BenchmarkEngineApplyBatch compares the two delivery modes over the
// same 10k-event burst cycle (detect → infer → reroute → reconverge →
// fall back): one Apply call per batch versus the deprecated
// per-message Observe* shims (each a one-event batch). Both make
// identical decisions — the batched mode only amortizes the
// per-delivery setup — so the gap is pure API overhead.
func BenchmarkEngineApplyBatch(b *testing.B) {
	prefixes := make([]netaddr.Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	base := benchBurstCycle(prefixes)
	span := base[len(base)-1].At + time.Hour

	modes := []struct {
		name string
		run  func(e *Engine, batch event.Batch)
	}{
		{"batched", func(e *Engine, batch event.Batch) {
			if err := e.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}},
		{"shim", func(e *Engine, batch event.Batch) {
			for i := range batch {
				ev := &batch[i]
				switch ev.Kind {
				case event.KindWithdraw:
					e.ObserveWithdraw(ev.At, ev.Prefix)
				case event.KindAnnounce:
					e.ObserveAnnounce(ev.At, ev.Prefix, ev.Path)
				default:
					e.Tick(ev.At)
				}
			}
		}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			batch := append(event.Batch(nil), base...)
			e := benchEngine(b, prefixes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.run(e, batch)
				shiftBatch(batch, span)
			}
			b.StopTimer()
			if e.NumDecisions() != b.N {
				b.Fatalf("made %d decisions over %d cycles; the workload is vacuous", e.NumDecisions(), b.N)
			}
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// benchMetrics resolves a full pre-resolved handle set against a live
// registry — the exact wiring an instrumented fleet peer carries.
func benchMetrics(reg *telemetry.Registry) Metrics {
	return Metrics{
		Withdrawals:         reg.CounterVec("swift_peer_withdrawals_total", "", "peer").With("bench"),
		Announcements:       reg.CounterVec("swift_peer_announcements_total", "", "peer").With("bench"),
		BurstsStarted:       reg.CounterVec("swift_peer_bursts_started_total", "", "peer").With("bench"),
		BurstsEnded:         reg.CounterVec("swift_peer_bursts_ended_total", "", "peer").With("bench"),
		Decisions:           reg.CounterVec("swift_peer_decisions_total", "", "peer").With("bench"),
		RulesInstalled:      reg.CounterVec("swift_peer_rules_installed_total", "", "peer").With("bench"),
		InferencesDeferred:  reg.CounterVec("swift_peer_inferences_deferred_total", "", "peer").With("bench"),
		Provisions:          reg.CounterVec("swift_peer_provisions_total", "", "peer").With("bench"),
		ProvisionsUnchanged: reg.CounterVec("swift_peer_provisions_unchanged_total", "", "peer").With("bench"),
		InferLatency:        reg.HistogramVec("swift_peer_infer_latency_seconds", "", telemetry.DefLatencyBuckets, "peer").With("bench"),
		BurstDuration:       reg.HistogramVec("swift_peer_burst_duration_seconds", "", telemetry.DefDurationBuckets, "peer").With("bench"),
	}
}

// BenchmarkEngineApplySteadyState measures pure delivery overhead with
// no burst machinery: announce refreshes of known prefixes, the
// collector steady state. The telemetry mode runs the same batched
// delivery on a fully instrumented engine — the perf gate for the
// pre-resolved-handle design, which must stay 0 allocs/op.
func BenchmarkEngineApplySteadyState(b *testing.B) {
	const nEvents = 4096
	prefixes := make([]netaddr.Prefix, nEvents)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	e := benchEngine(b, prefixes)
	path := []uint32{2, 5, 6}
	batch := make(event.Batch, 0, nEvents)
	for i, p := range prefixes {
		batch = append(batch, event.Announce(time.Duration(i)*time.Microsecond, p, path))
	}
	for _, mode := range []string{"batched", "telemetry", "shim"} {
		b.Run(mode, func(b *testing.B) {
			eng := e
			if mode == "telemetry" {
				eng = benchEngineMetrics(b, prefixes, benchMetrics(telemetry.NewRegistry()))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "shim" {
					for j := range batch {
						ev := &batch[j]
						eng.ObserveAnnounce(ev.At, ev.Prefix, ev.Path)
					}
				} else {
					if err := eng.Apply(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// TestApplySteadyStateZeroAllocInstrumented pins the telemetry design
// contract: a fully instrumented engine's steady-state Apply allocates
// nothing — handles are pre-resolved, tallies are batch-local, flushes
// are plain atomic adds. The fused variant wires the engine into a
// live evidence aggregator: steady-state deliveries make no decisions,
// so the fusion gate must stay entirely off the hot path and the
// contract is unchanged.
func TestApplySteadyStateZeroAllocInstrumented(t *testing.T) {
	const nEvents = 1024
	prefixes := make([]netaddr.Prefix, nEvents)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	path := []uint32{2, 5, 6}
	batch := make(event.Batch, 0, nEvents)
	for i, p := range prefixes {
		batch = append(batch, event.Announce(time.Duration(i)*time.Microsecond, p, path))
	}
	for _, mode := range []string{"plain", "fused"} {
		t.Run(mode, func(t *testing.T) {
			e := benchEngineMetrics(t, prefixes, benchMetrics(telemetry.NewRegistry()))
			if mode == "fused" {
				agg := fusion.NewAggregator(fusion.Config{}, e.Pool())
				key := event.PeerKey{AS: 2, BGPID: 1}
				e.cfg.Fusion = agg.Gate(key)
				agg.BurstStart(key, 0)
				defer agg.Retract(key)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := e.Apply(batch); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("instrumented steady-state Apply (%s) allocates %.1f/op, want 0", mode, allocs)
			}
		})
	}
}
