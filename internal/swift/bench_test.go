package swift

import (
	"testing"
	"time"

	"swift/internal/event"
	"swift/internal/netaddr"
)

// benchBurstCycle builds a self-restoring 10k-event burst: 3,000
// withdrawals open a burst and trigger an inference, the same prefixes
// re-announce (BGP reconverging onto a new path), ~4k steady-state
// refreshes drain the window, and a final tick closes the burst so the
// engine falls back and re-provisions. The engine ends every cycle in
// its starting state, so one engine serves every benchmark iteration —
// the timer sees only the pipeline, not setup.
func benchBurstCycle(prefixes []netaddr.Prefix) event.Batch {
	const nEvents = 10000
	const wd = 3000
	batch := make(event.Batch, 0, nEvents)
	at := time.Duration(0)
	for i := 0; i < wd; i++ {
		at += time.Millisecond
		batch = append(batch, event.Withdraw(at, prefixes[i]))
	}
	newPath := []uint32{2, 9, 6} // one shared slice, as a real source emits
	for i := 0; i < wd; i++ {
		at += time.Millisecond
		batch = append(batch, event.Announce(at, prefixes[i], newPath))
	}
	oldPath := []uint32{2, 5, 6}
	for len(batch) < nEvents-1 {
		at += time.Millisecond
		batch = append(batch, event.Announce(at, prefixes[len(batch)%len(prefixes)], oldPath))
	}
	batch = append(batch, event.Tick(at+time.Hour))
	return batch
}

func benchEngine(tb testing.TB, prefixes []netaddr.Prefix) *Engine {
	cfg := Config{LocalAS: 1, PrimaryNeighbor: 2}
	cfg.Inference.TriggerEvery = 2000
	cfg.Inference.UseHistory = false
	cfg.Burst.StartThreshold = 1500
	cfg.Encoding.MinPrefixes = 1000
	e := New(cfg)
	for _, p := range prefixes {
		e.LearnPrimary(p, []uint32{2, 5, 6})
		e.LearnAlternate(3, p, []uint32{3, 6})
	}
	if err := e.Provision(); err != nil {
		tb.Fatal(err)
	}
	return e
}

// shiftBatch advances every event's stream offset by span so
// back-to-back cycles keep the engine clock monotonic.
func shiftBatch(b event.Batch, span time.Duration) {
	for i := range b {
		b[i].At += span
	}
}

// BenchmarkEngineApplyBatch compares the two delivery modes over the
// same 10k-event burst cycle (detect → infer → reroute → reconverge →
// fall back): one Apply call per batch versus the deprecated
// per-message Observe* shims (each a one-event batch). Both make
// identical decisions — the batched mode only amortizes the
// per-delivery setup — so the gap is pure API overhead.
func BenchmarkEngineApplyBatch(b *testing.B) {
	prefixes := make([]netaddr.Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	base := benchBurstCycle(prefixes)
	span := base[len(base)-1].At + time.Hour

	modes := []struct {
		name string
		run  func(e *Engine, batch event.Batch)
	}{
		{"batched", func(e *Engine, batch event.Batch) {
			if err := e.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}},
		{"shim", func(e *Engine, batch event.Batch) {
			for i := range batch {
				ev := &batch[i]
				switch ev.Kind {
				case event.KindWithdraw:
					e.ObserveWithdraw(ev.At, ev.Prefix)
				case event.KindAnnounce:
					e.ObserveAnnounce(ev.At, ev.Prefix, ev.Path)
				default:
					e.Tick(ev.At)
				}
			}
		}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			batch := append(event.Batch(nil), base...)
			e := benchEngine(b, prefixes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.run(e, batch)
				shiftBatch(batch, span)
			}
			b.StopTimer()
			if e.NumDecisions() != b.N {
				b.Fatalf("made %d decisions over %d cycles; the workload is vacuous", e.NumDecisions(), b.N)
			}
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkEngineApplySteadyState measures pure delivery overhead with
// no burst machinery: announce refreshes of known prefixes, the
// collector steady state.
func BenchmarkEngineApplySteadyState(b *testing.B) {
	const nEvents = 4096
	prefixes := make([]netaddr.Prefix, nEvents)
	for i := range prefixes {
		prefixes[i] = netaddr.PrefixFor(8, i)
	}
	e := benchEngine(b, prefixes)
	path := []uint32{2, 5, 6}
	batch := make(event.Batch, 0, nEvents)
	for i, p := range prefixes {
		batch = append(batch, event.Announce(time.Duration(i)*time.Microsecond, p, path))
	}
	for _, mode := range []string{"batched", "shim"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if mode == "batched" {
					if err := e.Apply(batch); err != nil {
						b.Fatal(err)
					}
				} else {
					for j := range batch {
						ev := &batch[j]
						e.ObserveAnnounce(ev.At, ev.Prefix, ev.Path)
					}
				}
			}
			b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
