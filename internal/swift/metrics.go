package swift

import (
	"time"

	"swift/internal/telemetry"
)

// Metrics carries the engine's pre-resolved telemetry handles. Every
// field is optional (telemetry handles are nil-receiver safe), and the
// zero value disables instrumentation entirely.
//
// The handles are resolved once — at engine construction, typically
// from per-peer labeled families by a fleet's telemetry wiring — so the
// Apply hot path never touches a map or allocates: event counters are
// tallied locally and flushed with one atomic add per kind per batch,
// and the histograms only observe at burst-lifecycle points (inference
// runs, burst ends), which are rare by construction.
type Metrics struct {
	// Withdrawals and Announcements count applied stream events.
	Withdrawals   *telemetry.Counter
	Announcements *telemetry.Counter
	// BurstsStarted and BurstsEnded count detector transitions.
	BurstsStarted *telemetry.Counter
	BurstsEnded   *telemetry.Counter
	// Decisions counts accepted inferences; RulesInstalled the stage-2
	// writes they performed; InferencesDeferred the plausibility-gate
	// rejections.
	Decisions          *telemetry.Counter
	RulesInstalled     *telemetry.Counter
	InferencesDeferred *telemetry.Counter
	// Provisions counts successful provision passes;
	// ProvisionsUnchanged the burst-end fallbacks that skipped the
	// recompile because BGP reconverged onto the provisioned routes.
	// Unchanged/total is the provision-skip hit ratio.
	Provisions          *telemetry.Counter
	ProvisionsUnchanged *telemetry.Counter
	// FusionProposals counts inferences offered to the fleet fusion
	// gate; FusionVetoed those the gate deferred on conflicting
	// evidence; FusionExternal the externally-confirmed verdicts applied
	// (pre-trigger provisions).
	FusionProposals *telemetry.Counter
	FusionVetoed    *telemetry.Counter
	FusionExternal  *telemetry.Counter
	// InferLatency observes each inference run's computation time in
	// seconds (accepted or not).
	InferLatency *telemetry.Histogram
	// BurstDuration observes each closed burst's length in seconds on
	// the virtual stream clock.
	BurstDuration *telemetry.Histogram
}

// Then composes two observers: o's hooks fire first, next's second.
// Composition lets reporting (logging), telemetry and custom consumers
// stack on one engine without knowing about each other.
func (o Observer) Then(next Observer) Observer {
	return Observer{
		OnBurstStart: func(at time.Duration, withdrawals int) {
			if o.OnBurstStart != nil {
				o.OnBurstStart(at, withdrawals)
			}
			if next.OnBurstStart != nil {
				next.OnBurstStart(at, withdrawals)
			}
		},
		OnDecision: func(d Decision) {
			if o.OnDecision != nil {
				o.OnDecision(d)
			}
			if next.OnDecision != nil {
				next.OnDecision(d)
			}
		},
		OnBurstEnd: func(at time.Duration, received int) {
			if o.OnBurstEnd != nil {
				o.OnBurstEnd(at, received)
			}
			if next.OnBurstEnd != nil {
				next.OnBurstEnd(at, received)
			}
		},
		OnProvision: func(info ProvisionInfo) {
			if o.OnProvision != nil {
				o.OnProvision(info)
			}
			if next.OnProvision != nil {
				next.OnProvision(info)
			}
		},
	}
}

// TraceObserver returns an Observer that records one peer's burst
// lifecycle into ring — the engine-level feed of the ops plane's
// flight recorder. Compose it with other observers via Then.
func TraceObserver(ring *telemetry.BurstRing, peer string) Observer {
	return Observer{
		OnBurstStart: func(at time.Duration, withdrawals int) {
			ring.Start(peer, time.Now(), at, withdrawals)
		},
		OnDecision: func(d Decision) {
			links := make([]string, len(d.Result.Links))
			for i, l := range d.Result.Links {
				links[i] = l.String()
			}
			ring.Decision(peer, telemetry.DecisionTrace{
				At:                d.At,
				InferLatency:      d.InferLatency,
				FitScore:          d.Result.FS,
				Links:             links,
				PredictedPrefixes: len(d.Predicted),
				Received:          d.Result.Received,
				RulesInstalled:    d.RulesInstalled,
				External:          d.External,
			})
		},
		OnBurstEnd: func(at time.Duration, received int) {
			ring.End(peer, time.Now(), at, received)
		},
		OnProvision: func(info ProvisionInfo) {
			if !info.Fallback {
				return // initial provisioning belongs to no burst
			}
			ring.Provision(peer, telemetry.ProvisionTrace{
				At:             info.At,
				Unchanged:      info.Unchanged,
				TaggedPrefixes: info.TaggedPrefixes,
				PathBitsUsed:   info.PathBitsUsed,
				NextHops:       info.NextHops,
			})
		},
	}
}
