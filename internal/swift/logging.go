package swift

import "time"

// LoggingObserver builds the standard reporting Observer: one log line
// per burst start, decision, burst end and provision pass. The daemons
// and replay tools share it so their output (which the verification
// recipe greps for) stays in one place.
func LoggingObserver(logf func(format string, args ...any)) Observer {
	return Observer{
		OnBurstStart: func(at time.Duration, withdrawals int) {
			logf("burst started at %v (%d withdrawals in window)", at, withdrawals)
		},
		OnDecision: func(d Decision) {
			logf("reroute at %v: links %v, %d prefixes predicted, %d rules (%v)",
				d.At, d.Result.Links, len(d.Predicted), d.RulesInstalled, d.DataplaneTime)
		},
		OnBurstEnd: func(at time.Duration, received int) {
			logf("burst ended at %v: %d withdrawals total", at, received)
		},
		OnProvision: func(info ProvisionInfo) {
			mode := "provisioned"
			if info.Fallback {
				mode = "re-provisioned after fallback"
			}
			logf("%s: %d prefixes tagged, %d path bits, %d next-hops",
				mode, info.TaggedPrefixes, info.PathBitsUsed, info.NextHops)
		},
	}
}
