module swift

go 1.24
