// Package swift is the public API of the SWIFT reproduction — a
// predictive fast-reroute framework for remote BGP outages (Holterbach,
// Vissicchio, Dainotti, Vanbever: "SWIFT: Predictive Fast Reroute",
// SIGCOMM 2017).
//
// A SWIFTED router feeds each BGP session's message stream into an
// Engine. The engine maintains the session RIB, watches for withdrawal
// bursts, infers the failed AS link(s) from the first few thousand
// messages, and installs a handful of tag-based rules into a two-stage
// forwarding table that reroute every affected prefix at once:
//
//	cfg := swift.Config{LocalAS: 65001, PrimaryNeighbor: 65010}
//	engine := swift.New(cfg)
//	// table transfer
//	engine.LearnPrimary(prefix, asPath)
//	engine.LearnAlternate(neighborAS, prefix, asPath)
//	engine.Provision()
//	// live stream
//	engine.ObserveWithdraw(at, prefix)
//	engine.ObserveAnnounce(at, prefix, newPath)
//	// inspect
//	engine.Decisions()              // accepted inferences + installed rules
//	engine.FIB().ForwardPrefix(p)   // where a packet goes right now
//
// The subsystems the engine composes are exported for advanced use:
// inference (the Fit-Score algorithm of §4), encoding (the tag scheme of
// §5), reroute (backup next-hop planning), dataplane (the two-stage
// FIB), burst (detection), plus the substrates used by the evaluation —
// a BGP-4 wire codec and speaker, an MRT trace codec, an AS-topology
// generator, a C-BGP-equivalent simulator, and a RouteViews-like trace
// synthesizer.
package swift

import (
	"swift/internal/bmp"
	"swift/internal/burst"
	"swift/internal/controller"
	"swift/internal/encoding"
	"swift/internal/inference"
	"swift/internal/netaddr"
	"swift/internal/reroute"
	swiftengine "swift/internal/swift"
	"swift/internal/topology"
)

// Core engine types.
type (
	// Engine is the per-session SWIFT pipeline (§3's workflow).
	Engine = swiftengine.Engine
	// Config assembles the engine's tunables; zero values select the
	// paper's defaults.
	Config = swiftengine.Config
	// Decision records one accepted inference and its data-plane action.
	Decision = swiftengine.Decision
)

// Algorithm configuration types.
type (
	// InferenceConfig tunes the §4 inference algorithm.
	InferenceConfig = inference.Config
	// EncodingConfig sizes the §5 tag encoding.
	EncodingConfig = encoding.Config
	// BurstConfig tunes burst detection.
	BurstConfig = burst.Config
	// ReroutePolicy expresses the operator's backup preferences.
	ReroutePolicy = reroute.Policy
	// InferenceResult is a raw inference outcome.
	InferenceResult = inference.Result
)

// Addressing and topology types.
type (
	// Prefix is a compact IPv4 CIDR prefix.
	Prefix = netaddr.Prefix
	// Link is an undirected AS adjacency.
	Link = topology.Link
	// Tag is a packed SWIFT data-plane tag.
	Tag = encoding.Tag
	// Rule is a ternary match rule over tags.
	Rule = encoding.Rule
)

// Multi-peer ingestion types: a BMP (RFC 7854) station demuxes a
// monitored router's per-peer streams into a fleet of engines, one per
// peer — the paper's "one engine per session, in parallel" at
// collector scale.
type (
	// Fleet is a lock-striped pool of per-peer engines.
	Fleet = controller.Fleet
	// FleetConfig parameterizes a Fleet.
	FleetConfig = controller.FleetConfig
	// FleetPeer is one peer's engine plus its batched delivery queue.
	FleetPeer = controller.FleetPeer
	// FleetMetrics is an aggregate snapshot across the pool.
	FleetMetrics = controller.FleetMetrics
	// PeerKey identifies a monitored peer (AS, BGP identifier).
	PeerKey = controller.PeerKey
	// PeerDecision is one engine decision attributed to its peer.
	PeerDecision = controller.PeerDecision
	// Batch is a group of observations delivered to a peer engine.
	Batch = controller.Batch
	// Op is one observation inside a Batch.
	Op = controller.Op
	// BMPStation accepts BMP router connections and feeds a Fleet.
	BMPStation = bmp.Station
	// BMPStationConfig parameterizes a BMPStation.
	BMPStationConfig = bmp.StationConfig
	// BMPStationMetrics snapshots a station's ingestion counters.
	BMPStationMetrics = bmp.StationMetrics
)

// New builds an Engine. Load routes with LearnPrimary/LearnAlternate,
// call Provision, then stream messages.
func New(cfg Config) *Engine { return swiftengine.New(cfg) }

// NewFleet builds an empty engine fleet; peers are created on first
// use from the configured engine factory.
func NewFleet(cfg FleetConfig) *Fleet { return controller.NewFleet(cfg) }

// NewBMPStation builds a BMP collector over an existing fleet. Drive
// it with Serve (a TCP listener) or ServeConn (any net.Conn).
func NewBMPStation(cfg BMPStationConfig) *BMPStation { return bmp.NewStation(cfg) }

// DefaultInference returns the paper's inference configuration
// (wWS:wPS = 3:1, 2.5k trigger, history model on).
func DefaultInference() InferenceConfig { return inference.Default() }

// DefaultEncoding returns the paper's encoding configuration (48-bit
// tags, 18 path bits, depth 5, 1,500-prefix link threshold).
func DefaultEncoding() EncodingConfig { return encoding.Default() }

// ParsePrefix parses dotted-quad CIDR notation ("192.0.2.0/24").
func ParsePrefix(s string) (Prefix, error) { return netaddr.ParsePrefix(s) }

// MustParsePrefix is ParsePrefix for constants; it panics on error.
func MustParsePrefix(s string) Prefix { return netaddr.MustParsePrefix(s) }

// MakeLink builds a canonical AS link.
func MakeLink(a, b uint32) Link { return topology.MakeLink(a, b) }
