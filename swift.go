// Package swift is the public API of the SWIFT reproduction — a
// predictive fast-reroute framework for remote BGP outages (Holterbach,
// Vissicchio, Dainotti, Vanbever: "SWIFT: Predictive Fast Reroute",
// SIGCOMM 2017).
//
// The paper's workflow (§3) is a pipeline, and the API is shaped like
// one: every BGP feed reduces to one Event vocabulary (withdraw /
// announce / tick), Sources push ordered Batches of those events into
// Sinks, and Sinks report what they did through push-based Observer
// hooks. A SWIFTED router feeds each BGP session's stream into an
// Engine; the engine maintains the session RIB, watches for withdrawal
// bursts, infers the failed AS link(s) from the first few thousand
// messages, and installs a handful of tag-based rules into a two-stage
// forwarding table that reroutes every affected prefix at once:
//
//	cfg := swift.Config{LocalAS: 65001, PrimaryNeighbor: 65010}
//	cfg.Observer.OnDecision = func(d swift.Decision) { log.Println(d.Result.Links) }
//	engine := swift.New(cfg)
//	// table transfer
//	engine.LearnPrimary(prefix, asPath)
//	engine.LearnAlternate(neighborAS, prefix, asPath)
//	engine.Provision()
//	// live stream: any Source, or hand-built batches
//	engine.Apply(swift.Batch{
//		swift.WithdrawEvent(at, prefix),
//		swift.AnnounceEvent(at, prefix, newPath),
//	})
//	// inspect
//	engine.Decisions()              // accepted inferences + installed rules
//	engine.FIB().ForwardPrefix(p)   // where a packet goes right now
//
// Engine and Fleet both satisfy Sink, so single-session and
// collector-scale deployments are interchangeable behind the same
// Sources: a BMPStation demuxes live RFC 7854 feeds, an MRTSource
// replays collector archives, and synthetic burst generators emit the
// same events. Events carry their session's PeerKey — an Engine
// ignores it, a Fleet routes on it.
//
// The subsystems the engine composes are exported for advanced use:
// inference (the Fit-Score algorithm of §4), encoding (the tag scheme of
// §5), reroute (backup next-hop planning), dataplane (the two-stage
// FIB), burst (detection), plus the substrates used by the evaluation —
// a BGP-4 wire codec and speaker, an MRT trace codec, an AS-topology
// generator, a C-BGP-equivalent simulator, and a RouteViews-like trace
// synthesizer.
package swift

import (
	"time"

	"swift/internal/bmp"
	"swift/internal/burst"
	"swift/internal/controller"
	"swift/internal/encoding"
	"swift/internal/event"
	"swift/internal/fusion"
	"swift/internal/inference"
	"swift/internal/mrt"
	"swift/internal/netaddr"
	"swift/internal/reroute"
	swiftengine "swift/internal/swift"
	"swift/internal/telemetry"
	"swift/internal/topology"
)

// Event-stream vocabulary: every feed in the system speaks it.
type (
	// Event is one observation on a BGP session's stream: a withdraw,
	// an announce, or a clock tick.
	Event = event.Event
	// EventKind discriminates the event flavours.
	EventKind = event.Kind
	// Batch is an ordered group of events applied in one hand-off.
	Batch = event.Batch
	// Sink consumes event batches; Engine and Fleet both satisfy it.
	Sink = event.Sink
	// Source pushes event batches into a Sink; BMPStation, MRTSource
	// and the synthetic generators satisfy it.
	Source = event.Source
	// Provisioner is the optional table-transfer surface of a Sink.
	Provisioner = event.Provisioner
	// PeerKey identifies the session an event was observed on.
	PeerKey = event.PeerKey
	// StreamClock converts wall-clock timestamps into monotonic stream
	// offsets.
	StreamClock = event.StreamClock
)

// Event kinds.
const (
	KindWithdraw = event.KindWithdraw
	KindAnnounce = event.KindAnnounce
	KindTick     = event.KindTick
)

// WithdrawEvent builds a withdrawal event.
func WithdrawEvent(at time.Duration, p Prefix) Event { return event.Withdraw(at, p) }

// AnnounceEvent builds an announcement event (the path is retained, not
// copied).
func AnnounceEvent(at time.Duration, p Prefix, path []uint32) Event {
	return event.Announce(at, p, path)
}

// TickEvent builds a clock-advance event.
func TickEvent(at time.Duration) Event { return event.Tick(at) }

// Core engine types.
type (
	// Engine is the per-session SWIFT pipeline (§3's workflow). It is a
	// Sink: feed it event Batches through Apply.
	Engine = swiftengine.Engine
	// Config assembles the engine's tunables; zero values select the
	// paper's defaults.
	Config = swiftengine.Config
	// Observer is the engine's push-notification surface.
	Observer = swiftengine.Observer
	// ProvisionInfo describes one successful Provision pass.
	ProvisionInfo = swiftengine.ProvisionInfo
	// Decision records one accepted inference and its data-plane action.
	Decision = swiftengine.Decision
	// SessionSink is a concurrency-safe, peer-agnostic view of one
	// Engine, for feeding it from multi-peer Sources.
	SessionSink = swiftengine.SessionSink
)

// Algorithm configuration types.
type (
	// InferenceConfig tunes the §4 inference algorithm.
	InferenceConfig = inference.Config
	// EncodingConfig sizes the §5 tag encoding.
	EncodingConfig = encoding.Config
	// BurstConfig tunes burst detection.
	BurstConfig = burst.Config
	// ReroutePolicy expresses the operator's backup preferences.
	ReroutePolicy = reroute.Policy
	// InferenceResult is a raw inference outcome.
	InferenceResult = inference.Result
)

// Addressing and topology types.
type (
	// Prefix is a compact IPv4 CIDR prefix.
	Prefix = netaddr.Prefix
	// Link is an undirected AS adjacency.
	Link = topology.Link
	// Tag is a packed SWIFT data-plane tag.
	Tag = encoding.Tag
	// Rule is a ternary match rule over tags.
	Rule = encoding.Rule
)

// Multi-peer ingestion types: a BMP (RFC 7854) station demuxes a
// monitored router's per-peer streams into a fleet of engines, one per
// peer — the paper's "one engine per session, in parallel" at
// collector scale.
type (
	// Fleet is a lock-striped pool of per-peer engines. It is a Sink
	// (events route on their PeerKey) and a Provisioner.
	Fleet = controller.Fleet
	// FleetConfig parameterizes a Fleet.
	FleetConfig = controller.FleetConfig
	// FleetObserver is the fleet's peer-attributed Observer surface.
	FleetObserver = controller.FleetObserver
	// FleetPeer is one peer's engine plus its batched delivery queue.
	FleetPeer = controller.FleetPeer
	// FleetMetrics is an aggregate snapshot across the pool.
	FleetMetrics = controller.FleetMetrics
	// PeerDecision is one engine decision attributed to its peer.
	PeerDecision = controller.PeerDecision
	// BMPStation accepts BMP router connections and feeds a Sink.
	BMPStation = bmp.Station
	// BMPStationConfig parameterizes a BMPStation.
	BMPStationConfig = bmp.StationConfig
	// BMPStationMetrics snapshots a station's ingestion counters.
	BMPStationMetrics = bmp.StationMetrics
	// MRTSource replays MRT collector archives (RIB snapshot + update
	// stream) into any Sink.
	MRTSource = mrt.Source
)

// Cross-peer evidence fusion: a fleet configured with
// FleetConfig.Fusion shares one FusionAggregator across its engines —
// per-peer inferences become fleet evidence, corroborated links become
// verdicts, and verdicts pre-trigger reroutes on lagging sessions.
type (
	// FusionConfig parameterizes the aggregator (set it on
	// FleetConfig.Fusion; zero values take calibrated defaults).
	FusionConfig = fusion.Config
	// FusionAggregator is the fleet-level evidence store; reach it via
	// Fleet.Fusion for stats and verdict snapshots.
	FusionAggregator = fusion.Aggregator
	// FusionVerdict is a confirmed failed-link set with its fused
	// Fit-Score, supporter count and corroborated prefix union.
	FusionVerdict = fusion.Verdict
	// FusionStats is an aggregator's counter snapshot.
	FusionStats = fusion.Stats
)

// Telemetry surface. A MetricsRegistry holds Prometheus-exposable
// families; EngineMetrics is the pre-resolved handle set an engine
// reports into (zero-allocation on the steady-state hot path); a
// BurstRing is the bounded flight recorder behind the ops plane's
// /bursts endpoint; FleetTelemetry wires all of it through a Fleet.
type (
	// MetricsRegistry holds metric families and renders them in
	// Prometheus text exposition format (it is a /metrics http.Handler).
	MetricsRegistry = telemetry.Registry
	// EngineMetrics is an engine's pre-resolved metric handle set; set
	// it on Config.Metrics. The zero value (all-nil handles) disables
	// instrumentation at the cost of one branch per flush.
	EngineMetrics = swiftengine.Metrics
	// BurstRing is a bounded ring of burst lifecycle trace records.
	BurstRing = telemetry.BurstRing
	// BurstRecord is one burst's lifecycle in the ring.
	BurstRecord = telemetry.BurstRecord
	// FleetTelemetry owns a fleet's per-peer metric families.
	FleetTelemetry = controller.FleetTelemetry
	// PeerStatus is one peer's operational snapshot (the ops plane's
	// /peers row).
	PeerStatus = controller.PeerStatus
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewBurstRing builds a burst trace ring keeping the last capacity
// bursts (default 256 when capacity <= 0).
func NewBurstRing(capacity int) *BurstRing { return telemetry.NewBurstRing(capacity) }

// NewFleetTelemetry registers the per-peer engine metric families on
// reg. Pass the fleet's FleetConfig through Instrument before NewFleet
// and call RegisterFleetMetrics after; every engine then reports into
// the registry and the ring.
func NewFleetTelemetry(reg *MetricsRegistry, ring *BurstRing) *FleetTelemetry {
	return controller.NewFleetTelemetry(reg, ring)
}

// RegisterFleetMetrics exports a fleet's aggregate and scrape-time
// state (pool occupancy, per-peer FIB sizes, delivery counters) on reg.
func RegisterFleetMetrics(reg *MetricsRegistry, f *Fleet) {
	controller.RegisterFleetMetrics(reg, f)
}

// New builds an Engine. Load routes with LearnPrimary/LearnAlternate,
// call Provision, then stream event batches through Apply.
func New(cfg Config) *Engine { return swiftengine.New(cfg) }

// NewSessionSink wraps an Engine for concurrent multi-peer Sources.
func NewSessionSink(e *Engine) *SessionSink { return swiftengine.NewSessionSink(e) }

// NewFleet builds an empty engine fleet; peers are created on first
// use from the configured engine factory.
func NewFleet(cfg FleetConfig) *Fleet { return controller.NewFleet(cfg) }

// NewBMPStation builds a BMP collector over an existing Sink (a Fleet,
// or a SessionSink for single-engine deployments). Drive it with Serve
// (a TCP listener) or ServeConn (any net.Conn).
func NewBMPStation(cfg BMPStationConfig) *BMPStation { return bmp.NewStation(cfg) }

// DefaultInference returns the paper's inference configuration
// (wWS:wPS = 3:1, 2.5k trigger, history model on).
func DefaultInference() InferenceConfig { return inference.Default() }

// DefaultEncoding returns the paper's encoding configuration (48-bit
// tags, 18 path bits, depth 5, 1,500-prefix link threshold).
func DefaultEncoding() EncodingConfig { return encoding.Default() }

// ParsePrefix parses dotted-quad CIDR notation ("192.0.2.0/24").
func ParsePrefix(s string) (Prefix, error) { return netaddr.ParsePrefix(s) }

// MustParsePrefix is ParsePrefix for constants; it panics on error.
func MustParsePrefix(s string) Prefix { return netaddr.MustParsePrefix(s) }

// MakeLink builds a canonical AS link.
func MakeLink(a, b uint32) Link { return topology.MakeLink(a, b) }
